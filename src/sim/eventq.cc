#include "sim/eventq.hh"

#include <algorithm>
#include <chrono>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace dramctrl {

namespace {

/** Process-wide default agenda; set once at startup (see the CLI). */
AgendaKind defaultAgenda_ = AgendaKind::Heap;

} // namespace

AgendaKind
EventQueue::defaultAgenda()
{
    return defaultAgenda_;
}

void
EventQueue::setDefaultAgenda(AgendaKind kind)
{
    defaultAgenda_ = kind;
}

EventQueue::EventQueue(AgendaKind kind) : kind_(kind)
{
    if (kind_ == AgendaKind::Heap)
        heap_.reserve(64);
    else
        buckets_.resize(kCalBuckets);
    registerTickSource(this);
}

EventQueue::~EventQueue()
{
    unregisterTickSource(this);
}

void
EventQueue::siftUp(std::size_t slot)
{
    Event *ev = heap_[slot];
    while (slot > 0) {
        std::size_t parent = (slot - 1) / 2;
        if (!before(ev, heap_[parent]))
            break;
        heap_[slot] = heap_[parent];
        heap_[slot]->heapSlot_ = slot;
        slot = parent;
    }
    heap_[slot] = ev;
    ev->heapSlot_ = slot;
}

void
EventQueue::siftDown(std::size_t slot)
{
    Event *ev = heap_[slot];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * slot + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], ev))
            break;
        heap_[slot] = heap_[child];
        heap_[slot]->heapSlot_ = slot;
        slot = child;
    }
    heap_[slot] = ev;
    ev->heapSlot_ = slot;
}

void
EventQueue::removeAt(std::size_t slot)
{
    Event *moved = heap_.back();
    heap_.pop_back();
    if (slot < heap_.size()) {
        heap_[slot] = moved;
        moved->heapSlot_ = slot;
        // The refill element comes from an arbitrary subtree, so it may
        // need to travel either way.
        siftDown(slot);
        siftUp(moved->heapSlot_);
    }
}

void
EventQueue::calReindex(std::size_t b, std::size_t from)
{
    std::vector<Event *> &bucket = buckets_[b];
    for (std::size_t pos = from; pos < bucket.size(); ++pos)
        bucket[pos]->heapSlot_ = (b << 32) | pos;
}

void
EventQueue::calInsert(Event &ev)
{
    const std::size_t b = calBucketOf(ev.when_);
    std::vector<Event *> &bucket = buckets_[b];
    auto it = std::upper_bound(
        bucket.begin(), bucket.end(), &ev,
        [](const Event *a, const Event *e) { return before(a, e); });
    std::size_t pos = static_cast<std::size_t>(it - bucket.begin());
    bucket.insert(it, &ev);
    calReindex(b, pos);
    // A null cache means "unknown", not "empty" — an earlier event may
    // still be pending, so only improve a known minimum.
    if (calMin_ != nullptr && before(&ev, calMin_))
        calMin_ = &ev;
}

void
EventQueue::calRemove(Event &ev)
{
    const std::size_t b = ev.heapSlot_ >> 32;
    const std::size_t pos = ev.heapSlot_ & 0xffffffffu;
    std::vector<Event *> &bucket = buckets_[b];
    bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(pos));
    calReindex(b, pos);
    if (calMin_ == &ev)
        calMin_ = nullptr; // lazily re-found by calFindMin()
}

Event *
EventQueue::calFindMin() const
{
    if (calMin_ != nullptr)
        return calMin_;
    if (size_ == 0)
        return nullptr;

    // Walk one wheel revolution starting at the bucket of now. Every
    // pending event is at when >= curTick, so the first bucket head
    // that falls inside its own revolution window is the global
    // minimum: earlier-visited buckets held only heads at least a full
    // revolution out, later buckets hold only later windows, and the
    // bucket itself is sorted.
    const std::uint64_t start =
        static_cast<std::uint64_t>(curTick_) >> kCalShift;
    Event *far_best = nullptr;
    for (std::size_t i = 0; i < kCalBuckets; ++i) {
        const std::uint64_t num = start + i;
        const std::vector<Event *> &bucket =
            buckets_[num & (kCalBuckets - 1)];
        if (bucket.empty())
            continue;
        Event *head = bucket.front();
        if ((static_cast<std::uint64_t>(head->when_) >> kCalShift) ==
            num) {
            calMin_ = head;
            return head;
        }
        if (far_best == nullptr || before(head, far_best))
            far_best = head;
    }
    // Everything is at least one revolution ahead; the minimum is the
    // best bucket head.
    calMin_ = far_best;
    return far_best;
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    if (ev.scheduled_)
        panic("event '%s' scheduled twice (already at %llu, now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(ev.when_),
              static_cast<unsigned long long>(when));
    if (when < curTick_)
        panic("event '%s' scheduled in the past (%llu < now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));

    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.scheduled_ = true;
    ++size_;
    if (kind_ == AgendaKind::Heap) {
        heap_.push_back(&ev);
        siftUp(heap_.size() - 1);
    } else {
        calInsert(ev);
    }
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled_)
        panic("deschedule of unscheduled event '%s'", ev.name().c_str());
    if (kind_ == AgendaKind::Heap)
        removeAt(ev.heapSlot_);
    else
        calRemove(ev);
    ev.heapSlot_ = Event::kNoSlot;
    ev.scheduled_ = false;
    --size_;
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (!ev.scheduled_) {
        schedule(ev, when);
        return;
    }
    if (when < curTick_)
        panic("event '%s' rescheduled into the past (%llu < now %llu)",
              ev.name().c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));

    if (kind_ == AgendaKind::Heap) {
        // In place: take a fresh sequence number (a reschedule joins
        // the back of its new tick/priority class, like
        // deschedule+schedule always did) and sift from the current
        // slot.
        ev.when_ = when;
        ev.seq_ = nextSeq_++;
        siftDown(ev.heapSlot_);
        siftUp(ev.heapSlot_);
    } else {
        calRemove(ev);
        ev.when_ = when;
        ev.seq_ = nextSeq_++;
        calInsert(ev);
    }
}

std::uint64_t
EventQueue::orderOf(const Event &ev) const
{
    if (!ev.scheduled_)
        panic("orderOf() on unscheduled event '%s'", ev.name().c_str());
    std::uint64_t rank = 0;
    if (kind_ == AgendaKind::Heap) {
        for (const Event *other : heap_)
            if (other != &ev && before(other, &ev))
                ++rank;
    } else {
        for (const std::vector<Event *> &bucket : buckets_)
            for (const Event *other : bucket)
                if (other != &ev && before(other, &ev))
                    ++rank;
    }
    return rank;
}

void
EventQueue::restoreState(Tick when, std::uint64_t num_serviced)
{
    if (size_ != 0)
        panic("EventQueue::restoreState() with %zu events pending",
              size_);
    curTick_ = when;
    numServiced_ = num_serviced;
}

Tick
EventQueue::nextTick() const
{
    if (kind_ == AgendaKind::Heap)
        return heap_.empty() ? kMaxTick : heap_.front()->when_;
    const Event *head = calFindMin();
    return head == nullptr ? kMaxTick : head->when_;
}

void
EventQueue::serviceOne()
{
    if (size_ == 0)
        panic("serviceOne() on an empty event queue");

    Event *ev;
    if (kind_ == AgendaKind::Heap) {
        ev = heap_.front();
        removeAt(0);
    } else {
        ev = calFindMin();
        calRemove(*ev);
    }
    ev->heapSlot_ = Event::kNoSlot;
    ev->scheduled_ = false;
    --size_;
    curTick_ = ev->when_;
    ++numServiced_;

    TRACE(EventQ, "service '%s' (%zu pending)", ev->name().c_str(),
          size_);

    if (profiler_ != nullptr) {
        auto t0 = std::chrono::steady_clock::now();
        ev->process();
        auto t1 = std::chrono::steady_clock::now();
        profiler_->record(
            *ev, std::chrono::duration<double>(t1 - t0).count());
    } else {
        ev->process();
    }
}

Tick
EventQueue::simulate(Tick until)
{
    while (size_ != 0 && nextTick() <= until)
        serviceOne();

    // Advance to the horizon so that callers measuring elapsed simulated
    // time across an idle tail see the full window. An infinite horizon
    // (run-to-exhaustion) leaves curTick at the last event.
    if (until != kMaxTick && until > curTick_)
        curTick_ = until;

    return curTick_;
}

} // namespace dramctrl
