#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dramctrl {

// PCG-XSH-RR 64/32 doubled up: simple, fast, and good enough statistical
// quality for workload generation.
Random::Random(std::uint64_t seed)
    : state_(seed + 0x9e3779b97f4a7c15ULL), inc_(seed | 1)
{
    // Scramble the initial state so nearby seeds diverge immediately.
    next();
    next();
}

std::uint64_t
Random::next()
{
    auto step = [this]() -> std::uint32_t {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    };
    std::uint64_t hi = step();
    std::uint64_t lo = step();
    return (hi << 32) | lo;
}

std::uint64_t
Random::uniform(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Random::uniform: lo %llu > hi %llu",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
    std::uint64_t range = hi - lo + 1;
    if (range == 0) // [0, 2^64-1]
        return next();
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % range);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % range;
}

double
Random::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0)
        return false;
    if (p >= 1)
        return true;
    return uniformReal() < p;
}

std::uint64_t
Random::geometric(double p)
{
    if (p <= 0 || p > 1)
        panic("Random::geometric: p %f out of (0, 1]", p);
    if (p == 1)
        return 0;
    double u = uniformReal();
    return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

} // namespace dramctrl
