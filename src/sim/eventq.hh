/**
 * @file
 * The event queue: an ordered agenda of future events.
 */

#ifndef DRAMCTRL_SIM_EVENTQ_H
#define DRAMCTRL_SIM_EVENTQ_H

#include <cstdint>
#include <set>

#include "sim/event.hh"
#include "sim/types.hh"

namespace dramctrl {

/**
 * Observer of serviced events, attached with EventQueue::setProfiler.
 * The queue calls record() after each event's process() returns; the
 * hook costs one branch when no profiler is attached.
 */
class EventQueueProfiler
{
  public:
    virtual ~EventQueueProfiler() = default;

    /** @param host_seconds wall-clock time process() took. */
    virtual void record(const Event &ev, double host_seconds) = 0;
};

/**
 * A discrete-event agenda.
 *
 * The queue owns simulated time: curTick() only advances when an event is
 * serviced (or when simulate() runs past the last event). Events are not
 * owned by the queue; the scheduling model object keeps them as members,
 * which is safe because an object never outlives its own events.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p ev at absolute tick @p when. Scheduling in the past or
     * double-scheduling is a modelling bug and panics.
     */
    void schedule(Event &ev, Tick when);

    /** Remove a scheduled event from the agenda. */
    void deschedule(Event &ev);

    /** Move an already- or not-yet-scheduled event to @p when. */
    void reschedule(Event &ev, Tick when);

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** @return true when no events are pending. */
    bool empty() const { return agenda_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return agenda_.size(); }

    /** Tick of the earliest pending event; kMaxTick when empty. */
    Tick nextTick() const;

    /**
     * Service exactly one event (the earliest), advancing curTick to its
     * tick. Panics if the queue is empty.
     */
    void serviceOne();

    /**
     * Run all events with when() <= @p until, then advance curTick to
     * @p until if it is a finite horizon (so back-to-back simulate()
     * calls see monotonic time even across idle stretches).
     *
     * @return the final value of curTick().
     */
    Tick simulate(Tick until = kMaxTick);

    /** Total number of events serviced since construction. */
    std::uint64_t numEventsServiced() const { return numServiced_; }

    /**
     * Attach @p profiler (not owned; nullptr detaches) to count and
     * time every serviced event.
     */
    void setProfiler(EventQueueProfiler *profiler)
    {
        profiler_ = profiler;
    }

    EventQueueProfiler *profiler() const { return profiler_; }

  private:
    struct EventCmp
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when() != b->when())
                return a->when() < b->when();
            if (a->priority() != b->priority())
                return a->priority() < b->priority();
            return a->seq_ < b->seq_;
        }
    };

    std::set<Event *, EventCmp> agenda_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numServiced_ = 0;
    EventQueueProfiler *profiler_ = nullptr;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_EVENTQ_H
