/**
 * @file
 * The event queue: an ordered agenda of future events.
 */

#ifndef DRAMCTRL_SIM_EVENTQ_H
#define DRAMCTRL_SIM_EVENTQ_H

#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace dramctrl {

/**
 * Observer of serviced events, attached with EventQueue::setProfiler.
 * The queue calls record() after each event's process() returns; the
 * hook costs one branch when no profiler is attached.
 */
class EventQueueProfiler
{
  public:
    virtual ~EventQueueProfiler() = default;

    /** @param host_seconds wall-clock time process() took. */
    virtual void record(const Event &ev, double host_seconds) = 0;
};

/**
 * Agenda representation selector (see docs/PERFORMANCE.md).
 *
 * Heap is the default: an intrusive binary min-heap, O(log n)
 * everywhere, and the fastest choice at the agenda sizes a single
 * controller produces. Calendar is a classic calendar queue (a
 * time wheel of sorted buckets with per-revolution overflow), O(1)
 * amortised for the near-future traffic DRAM models generate; it is
 * selectable per process for measurement (bench/eventq_perf) and for
 * very large agendas. Both orderings are exactly (when, priority,
 * seq), so simulation results are byte-identical either way.
 */
enum class AgendaKind { Heap, Calendar };

/**
 * A discrete-event agenda.
 *
 * The queue owns simulated time: curTick() only advances when an event is
 * serviced (or when simulate() runs past the last event). Events are not
 * owned by the queue; the scheduling model object keeps them as members,
 * which is safe because an object never outlives its own events.
 *
 * The default agenda is an intrusive binary min-heap over a contiguous
 * vector: each Event carries its own slot, so schedule, deschedule and
 * reschedule are all O(log n) sift operations with no per-operation
 * allocation (the backing vector only grows to the agenda's high-water
 * mark). Ordering is (when, priority, seq): two events at the same tick
 * and priority run in schedule order, and rescheduling re-enters the
 * event at the back of its tick/priority class, exactly as the previous
 * tree-based agenda behaved. The alternative calendar agenda (see
 * AgendaKind) keeps the identical ordering contract with a different
 * cost profile.
 */
class EventQueue
{
  public:
    /**
     * Registers the queue as its thread's tick source (logging.hh).
     * The agenda kind is fixed at construction; it defaults to the
     * process-wide default (see setDefaultAgenda).
     */
    explicit EventQueue(AgendaKind kind = defaultAgenda());

    /** Agenda used by queues constructed without an explicit kind. */
    static AgendaKind defaultAgenda();

    /**
     * Set the process-wide default agenda. Call before building any
     * simulator (existing queues keep their kind); the CLI's --eventq
     * flag maps straight onto this.
     */
    static void setDefaultAgenda(AgendaKind kind);

    /** This queue's agenda representation. */
    AgendaKind agenda() const { return kind_; }

    /** Unregisters, so a dead queue is never left in the registry. */
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p ev at absolute tick @p when. Scheduling in the past or
     * double-scheduling is a modelling bug and panics.
     */
    void schedule(Event &ev, Tick when);

    /** Remove a scheduled event from the agenda. */
    void deschedule(Event &ev);

    /** Move an already- or not-yet-scheduled event to @p when. */
    void reschedule(Event &ev, Tick when);

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** @return true when no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; kMaxTick when empty. */
    Tick nextTick() const;

    /**
     * Service exactly one event (the earliest), advancing curTick to its
     * tick. Panics if the queue is empty.
     */
    void serviceOne();

    /**
     * Run all events with when() <= @p until, then advance curTick to
     * @p until if it is a finite horizon (so back-to-back simulate()
     * calls see monotonic time even across idle stretches).
     *
     * @return the final value of curTick().
     */
    Tick simulate(Tick until = kMaxTick);

    /** Total number of events serviced since construction. */
    std::uint64_t numEventsServiced() const { return numServiced_; }

    /**
     * Service rank of scheduled event @p ev: the number of pending
     * events that would run before it. Checkpoints record this so a
     * restore can re-schedule events in the original relative order
     * (fresh sequence numbers then break same-tick ties identically).
     */
    std::uint64_t orderOf(const Event &ev) const;

    /**
     * Reset simulated time and the serviced-event count to the values
     * a checkpoint recorded. Only legal on an empty agenda (restore
     * sets time before any event is re-scheduled).
     */
    void restoreState(Tick when, std::uint64_t num_serviced);

    /**
     * Attach @p profiler (not owned; nullptr detaches) to count and
     * time every serviced event.
     */
    void setProfiler(EventQueueProfiler *profiler)
    {
        profiler_ = profiler;
    }

    EventQueueProfiler *profiler() const { return profiler_; }

  private:
    /** Strict weak order of the agenda: (when, priority, seq). */
    static bool
    before(const Event *a, const Event *b)
    {
        if (a->when_ != b->when_)
            return a->when_ < b->when_;
        if (a->priority_ != b->priority_)
            return a->priority_ < b->priority_;
        return a->seq_ < b->seq_;
    }

    /** Move heap_[slot] up while it precedes its parent. */
    void siftUp(std::size_t slot);
    /** Move heap_[slot] down while a child precedes it. */
    void siftDown(std::size_t slot);
    /** Detach heap_[slot], refilling the hole from the heap's back. */
    void removeAt(std::size_t slot);

    /**
     * Calendar agenda. The wheel has kCalBuckets sorted buckets of
     * 2^kCalShift ticks each; an event lives in bucket
     * (when >> kCalShift) mod kCalBuckets whatever its revolution, so
     * far-future events need no separate overflow structure. An
     * event's slot encodes (bucket << 32) | position. The head of the
     * agenda is found by walking one revolution from the bucket of
     * curTick and falling back to a head-of-bucket scan (events more
     * than a revolution out); calMin_ caches the result until a
     * mutation invalidates it.
     */
    static constexpr unsigned kCalShift = 12;    // 4096 ticks ~ 4.1 ns
    static constexpr std::size_t kCalBuckets = 256;

    static std::size_t calBucketOf(Tick when)
    {
        return static_cast<std::size_t>(when >> kCalShift) &
               (kCalBuckets - 1);
    }

    void calInsert(Event &ev);
    void calRemove(Event &ev);
    /** Global minimum of the calendar agenda; null when empty. */
    Event *calFindMin() const;
    /** Rewrite the cached slots of bucket @p b from @p from on. */
    void calReindex(std::size_t b, std::size_t from);

    AgendaKind kind_;
    std::vector<Event *> heap_;
    std::vector<std::vector<Event *>> buckets_;
    mutable Event *calMin_ = nullptr;
    std::size_t size_ = 0;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numServiced_ = 0;
    EventQueueProfiler *profiler_ = nullptr;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_EVENTQ_H
