/**
 * @file
 * Deterministic pseudo-random source for traffic generators and
 * workload models.
 *
 * Every consumer owns its own Random instance with an explicit seed, so
 * simulations are reproducible regardless of the order objects are
 * serviced in, and two models fed by identically-seeded generators see
 * identical request streams (essential for the model-vs-model
 * validation experiments).
 */

#ifndef DRAMCTRL_SIM_RANDOM_H
#define DRAMCTRL_SIM_RANDOM_H

#include <cstdint>

namespace dramctrl {

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x853c49e6748fea9bULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p);

    /** Geometric-ish integer: number of failures before success(p). */
    std::uint64_t geometric(double p);

    /** Raw generator state, for checkpointing. */
    std::uint64_t rawState() const { return state_; }
    std::uint64_t rawInc() const { return inc_; }

    /** Restore a stream captured via rawState()/rawInc(). */
    void
    setRaw(std::uint64_t state, std::uint64_t inc)
    {
        state_ = state;
        inc_ = inc;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace dramctrl

#endif // DRAMCTRL_SIM_RANDOM_H
