/**
 * @file
 * Fundamental simulation types and time conversions.
 *
 * The simulator counts time in integer ticks, with one tick equal to one
 * picosecond. This matches gem5's convention and gives enough resolution
 * to express DRAM interface clocks (hundreds of MHz to a few GHz) without
 * rounding error, while a 64-bit tick counter still covers more than 100
 * days of simulated time.
 */

#ifndef DRAMCTRL_SIM_TYPES_H
#define DRAMCTRL_SIM_TYPES_H

#include <cstdint>

namespace dramctrl {

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A physical memory address. */
using Addr = std::uint64_t;

/** Identifier of a requestor (CPU, traffic generator, ...). */
using RequestorId = std::uint16_t;

/** Sentinel for "no tick": further in the future than any real event. */
inline constexpr Tick kMaxTick = ~Tick(0);

/** Ticks per second: 1 tick = 1 ps. */
inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** Ticks per nanosecond. */
inline constexpr Tick kTicksPerNs = 1'000;

/** Convert a duration in nanoseconds to ticks (rounding to nearest). */
constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert a duration in microseconds to ticks. */
constexpr Tick
fromUs(double us)
{
    return fromNs(us * 1e3);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert ticks to (fractional) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/** Period in ticks of a clock given its frequency in MHz. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/**
 * Integer ceiling division, used throughout for splitting byte counts
 * into bursts and sizing bucket counts.
 */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for a non-zero value. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

} // namespace dramctrl

#endif // DRAMCTRL_SIM_TYPES_H
