/**
 * @file
 * Tests for the two deeper extensions: per-rank staggered refresh
 * (other ranks keep serving while one refreshes) and self-refresh
 * (deep sleep with tXS exit and IDD6 background power), including
 * protocol audits of both.
 */

#include <gtest/gtest.h>

#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/protocol_checker.hh"
#include "harness/testbench.hh"
#include "power/micron_power.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

constexpr Tick kRCD = 13750;
constexpr Tick kCL = 13750;
constexpr Tick kBURST = 6000;

/** Address of (rank, bank, row) under RoRaBaCoCh with 2 ranks. */
Addr
addrOf2R(unsigned rank, unsigned bank, std::uint64_t row,
         std::uint64_t col = 0)
{
    return (((row * 2 + rank) * 8 + bank) * 16 + col) * 64;
}

DRAMCtrlConfig
twoRankRefreshConfig()
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.org.ranksPerChannel = 2;
    cfg.org.channelCapacity *= 2;
    cfg.timing.tREFI = fromUs(2);
    cfg.perRankRefresh = true;
    return cfg;
}

TEST(PerRankRefreshTest, OtherRankServesDuringRefresh)
{
    Simulator sim;
    DRAMCtrlConfig cfg = twoRankRefreshConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    // Rank 0's first refresh is due at tREFI/2 = 1 us (staggered).
    Tick just_after = fromUs(1) + 1;
    auto r0 = req.inject(just_after, MemCmd::ReadReq,
                         addrOf2R(0, 0, 0));
    auto r1 = req.inject(just_after, MemCmd::ReadReq,
                         addrOf2R(1, 0, 0));
    sim.run(fromUs(10));

    // Rank 0 is blocked by its refresh (tRFC = 160 ns).
    EXPECT_GE(req.responseTick(r0),
              fromUs(1) + fromNs(160) + kRCD + kCL + kBURST);
    // Rank 1 is not: it answers at the bare access time (the two data
    // bursts share the bus, so allow one burst of slack).
    EXPECT_LE(req.responseTick(r1),
              just_after + kRCD + kCL + 2 * kBURST);
}

TEST(PerRankRefreshTest, RefreshesStaggerAcrossRanks)
{
    Simulator sim;
    DRAMCtrlConfig cfg = twoRankRefreshConfig();
    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);
    sim.run(fromUs(9));

    // ~4 refreshes per rank over 9 us at tREFI = 2 us, alternating.
    std::vector<Tick> rank0, rank1;
    for (const CmdRecord &c : logger.log()) {
        if (c.cmd != DRAMCmd::Ref)
            continue;
        (c.rank == 0 ? rank0 : rank1).push_back(c.tick);
    }
    EXPECT_GE(rank0.size(), 3u);
    EXPECT_GE(rank1.size(), 3u);
    // The two ranks never refresh at the same instant.
    for (Tick t0 : rank0) {
        for (Tick t1 : rank1)
            EXPECT_NE(t0, t1);
    }
}

TEST(PerRankRefreshTest, ProtocolAuditWithRandomTraffic)
{
    Simulator sim;
    DRAMCtrlConfig cfg = twoRankRefreshConfig();
    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);

    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    Random rng(23);
    for (unsigned i = 0; i < 1200; ++i)
        req.inject(i * rng.uniform(3000, 9000) / 1000 * 1000 +
                       i * 4000,
                   rng.chance(0.6) ? MemCmd::ReadReq
                                   : MemCmd::WriteReq,
                   rng.uniform(0, 1 << 15) * 64);
    harness::runUntil(sim, [&] { return req.allResponded(); });
    ASSERT_TRUE(req.allResponded());

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty())
        << v.size() << " violations, first: "
        << (v.empty() ? "" : v[0].toString());
}

DRAMCtrlConfig
selfRefreshConfig()
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.enablePowerDown = true;
    cfg.powerDownDelay = fromNs(100);
    cfg.tXP = fromNs(6);
    cfg.enableSelfRefresh = true;
    cfg.selfRefreshDelay = fromUs(5);
    cfg.tXS = fromNs(170);
    return cfg;
}

TEST(SelfRefreshTest, RequiresPowerDown)
{
    setThrowOnError(true);
    DRAMCtrlConfig cfg = selfRefreshConfig();
    cfg.enablePowerDown = false;
    EXPECT_THROW(cfg.check(), std::runtime_error);
    setThrowOnError(false);
}

TEST(SelfRefreshTest, ShortIdleStaysInPowerDown)
{
    Simulator sim;
    DRAMCtrlConfig cfg = selfRefreshConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    req.inject(0, MemCmd::ReadReq, 0);
    req.inject(fromUs(2), MemCmd::ReadReq, 8192); // < selfRefreshDelay
    sim.run(fromUs(10));
    EXPECT_GT(ctrl.ctrlStats().powerDownTime.value(), 0.0);
    EXPECT_EQ(ctrl.ctrlStats().selfRefreshEntries.value(), 0.0);
}

TEST(SelfRefreshTest, LongIdleDeepensAndPaysTxs)
{
    Simulator sim;
    DRAMCtrlConfig cfg = selfRefreshConfig();
    cfg.timing.tREFI = 0; // isolate the tXS effect from refreshes
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    req.inject(0, MemCmd::ReadReq, 0);
    Tick second = fromUs(20);
    auto rd = req.inject(second, MemCmd::ReadReq, 64);
    sim.run(fromUs(40));

    EXPECT_EQ(ctrl.ctrlStats().selfRefreshEntries.value(), 1.0);
    EXPECT_GT(ctrl.ctrlStats().selfRefreshTime.value(),
              static_cast<double>(fromUs(10)));
    // The wake pays tXS (170 ns), then a full activate path.
    EXPECT_EQ(req.responseTick(rd),
              second + fromNs(170) + kRCD + kCL + kBURST);
}

TEST(SelfRefreshTest, ControllerSkipsRefreshWhileSelfRefreshing)
{
    Simulator sim;
    DRAMCtrlConfig cfg = selfRefreshConfig();
    cfg.timing.tREFI = fromUs(2);
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    req.inject(0, MemCmd::ReadReq, 0);
    // 100 us idle: in self-refresh after ~5 us; the controller must
    // not count external REFs for the remaining ~95 us.
    req.inject(fromUs(100), MemCmd::ReadReq, 8192);
    sim.run(fromUs(120));
    // Without the skip there would be ~50 refreshes.
    EXPECT_LT(ctrl.ctrlStats().numRefreshes.value(), 10.0);
    EXPECT_EQ(ctrl.ctrlStats().selfRefreshEntries.value(), 1.0);
}

TEST(SelfRefreshTest, BackgroundPowerDropsToIdd6)
{
    power::MicronPowerParams p = power::ddr3Params();
    DRAMCtrlConfig cfg = presets::ddr3_1600();

    PowerInputs in;
    in.window = fromUs(100);
    in.prechargeAllTime = fromUs(100);
    in.selfRefreshTime = fromUs(100);
    double asleep = power::computePower(in, cfg, p).background;
    EXPECT_NEAR(asleep, p.idd6 * p.vdd * 8, 1e-9);

    in.selfRefreshTime = 0;
    in.powerDownTime = fromUs(100);
    double pd = power::computePower(in, cfg, p).background;
    EXPECT_LT(asleep, pd);
}

TEST(SelfRefreshTest, ProtocolAuditWithSparseTraffic)
{
    Simulator sim;
    DRAMCtrlConfig cfg = selfRefreshConfig();
    cfg.timing.tREFI = fromUs(2);
    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    // Mixture of bursts and long sleeps.
    for (unsigned i = 0; i < 6; ++i) {
        for (unsigned j = 0; j < 10; ++j)
            req.inject(i * fromUs(15) + j * fromNs(50),
                       j % 3 == 0 ? MemCmd::WriteReq
                                  : MemCmd::ReadReq,
                       static_cast<Addr>(i * 37 + j) * 4096);
    }
    sim.run(fromUs(120));
    ASSERT_TRUE(req.allResponded());

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty())
        << v.size() << " violations, first: "
        << (v.empty() ? "" : v[0].toString());
}

} // namespace
} // namespace dramctrl
