/**
 * @file
 * Concurrency tests for the shared-nothing simulation contract: many
 * whole Simulators running to completion on worker threads at once,
 * with identical results to serial execution, per-thread object
 * pools that aggregate cleanly, and a logging registry that survives
 * queues being created and destroyed across threads. The TSan CI job
 * runs exactly these suites.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dram/dram_presets.hh"
#include "exec/batch_runner.hh"
#include "exec/sweep.hh"
#include "harness/testbench.hh"
#include "sim/eventq.hh"
#include "sim/logging.hh"
#include "sim/pool.hh"
#include "trafficgen/random_gen.hh"

using namespace dramctrl;
using namespace dramctrl::exec;

namespace {

/** Simulated outcome of one small random-traffic run. */
struct RunResult
{
    Tick endTick = 0;
    double bandwidthGBs = 0;
    double avgReadLatencyNs = 0;

    bool
    operator==(const RunResult &o) const
    {
        return endTick == o.endTick &&
               bandwidthGBs == o.bandwidthGBs &&
               avgReadLatencyNs == o.avgReadLatencyNs;
    }
};

RunResult
runOne(std::uint64_t seed)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.writeLowThreshold = 0.0; // drain fully so the run terminates
    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = fromNs(6);
    gc.numRequests = 2000;
    gc.seed = seed;
    auto &gen = tb.addGen<RandomGen>(gc);

    tb.runToCompletion([&] { return gen.done(); });

    RunResult r;
    r.endTick = tb.sim().curTick();
    r.bandwidthGBs = tb.ctrl().achievedBandwidthGBs();
    r.avgReadLatencyNs = gen.avgReadLatencyNs();
    return r;
}

std::vector<RunResult>
runBatch(unsigned jobs, std::size_t n)
{
    BatchRunner runner(jobs);
    std::vector<RunResult> results;
    runner.run<RunResult>(
        n, [](std::size_t i) { return runOne(deriveSeed(42, i)); },
        [&](const JobOutcome<RunResult> &out) {
            EXPECT_TRUE(out.ok) << "job " << out.index << ": "
                                << out.error;
            results.push_back(out.value);
        });
    return results;
}

} // namespace

TEST(ParallelSim, EightConcurrentSimulatorsMatchSerial)
{
    std::vector<RunResult> serial = runBatch(1, 8);
    std::vector<RunResult> parallel = runBatch(8, 8);
    ASSERT_EQ(serial.size(), 8u);
    ASSERT_EQ(parallel.size(), 8u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
        EXPECT_GT(serial[i].endTick, 0u);
    }
}

namespace {

std::string
runSweepBatch(unsigned jobs)
{
    SweepSpec spec;
    spec.presets = {"ddr3_1333", "lpddr3_1600"};
    spec.patterns = {"random", "dram"};
    spec.readPcts = {50, 100};
    spec.numSeeds = 2;
    spec.masterSeed = 3;
    spec.requests = 1200;

    std::string err;
    EXPECT_TRUE(checkSpec(spec, &err)) << err;
    std::vector<SweepPoint> grid = expandGrid(spec);
    EXPECT_EQ(grid.size(), 2u * 2u * 2u * 2u);

    BatchRunner runner(jobs);
    std::string csv = csvHeader() + "\n";
    runner.run<SweepRow>(
        grid.size(),
        [&](std::size_t i) { return runSweepPoint(grid[i], spec); },
        [&](const JobOutcome<SweepRow> &out) {
            EXPECT_TRUE(out.ok) << out.error;
            csv += toCsv(out.value) + "\n";
        });
    return csv;
}

} // namespace

TEST(ParallelSim, SweepOutputByteIdenticalAcrossWidths)
{
    std::string serial = runSweepBatch(1);
    EXPECT_EQ(serial, runSweepBatch(4));
}

TEST(ParallelSim, PoolsArePerThreadAndAggregate)
{
    struct Blob
    {
        char payload[48];
    };

    // Allocations on a worker thread must not disturb this thread's
    // pool, and must show up in the cross-thread aggregate once the
    // worker has exited (its counters fold into the retired totals).
    const PoolStats before = ObjectPool<Blob>::instance().stats();
    const PoolStats aggBefore = ObjectPool<Blob>::aggregatedStats();

    std::thread worker([] {
        auto &pool = ObjectPool<Blob>::instance();
        std::vector<void *> blobs;
        for (int i = 0; i < 100; ++i)
            blobs.push_back(pool.allocate());
        for (void *p : blobs)
            pool.deallocate(p);
        EXPECT_EQ(pool.stats().totalAllocs, 100u);
        EXPECT_EQ(pool.stats().inUse, 0u);
    });
    worker.join();

    const PoolStats after = ObjectPool<Blob>::instance().stats();
    EXPECT_EQ(after.totalAllocs, before.totalAllocs)
        << "worker-thread allocations leaked into this thread's "
           "pool";

    const PoolStats agg = ObjectPool<Blob>::aggregatedStats();
    EXPECT_EQ(agg.totalAllocs, aggBefore.totalAllocs + 100);
    EXPECT_EQ(agg.inUse, 0u);
}

TEST(ParallelSim, EventQueueRegistryHandlesChurnAcrossThreads)
{
    // Queues register as their thread's tick source on construction
    // and unregister on destruction; warn()'s tick prefix reads the
    // registry via activeSimTick(). The combination must survive
    // concurrent churn (TSan verifies the locking), and after a
    // queue dies the registry must not dereference it — the
    // dangling-pointer fix.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            Tick tick = 0;
            for (int i = 0; i < 50; ++i) {
                EventQueue q;
                EXPECT_TRUE(activeSimTick(tick))
                    << "live queue must be this thread's tick "
                       "source";
                EXPECT_EQ(tick, q.curTick());
            }
            // All queues on this thread are gone: the prefix lookup
            // must see an empty registry, not a destroyed queue.
            EXPECT_FALSE(activeSimTick(tick));
        });
    }
    for (auto &t : threads)
        t.join();

    // The main thread never had a queue in this test, so its own
    // lookup is unaffected by the churn above.
    Tick tick = 0;
    EXPECT_FALSE(activeSimTick(tick));
}
