/**
 * @file
 * Observability-under-parallelism tests, run under TSan in CI: the
 * thread-local trace sinks and Chrome tracers of concurrent BatchRunner
 * jobs never interleave, every per-job Chrome trace stays valid JSON,
 * and one shared MetricsRegistry takes concurrent counter/gauge
 * traffic from all workers without losing increments.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dram/dram_ctrl.hh"
#include "exec/batch_runner.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/metrics_server.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using obs::MetricsRegistry;
using testutil::TestRequestor;

constexpr unsigned kJobs = 4;
constexpr std::size_t kRuns = 12;

/** Balanced braces/brackets and quotes outside of strings. */
bool
structurallyValidJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
          case '[': ++depth; break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            break;
          default: break;
        }
    }
    return depth == 0 && !in_string;
}

/** One small simulation with its own thread-local observers. */
std::pair<std::string, std::string>
runObservedJob(std::size_t idx)
{
    // Per-thread (thread_local) tracer and text sink: install, run,
    // uninstall — concurrent jobs must not see each other's events.
    obs::ChromeTraceWriter tracer;
    obs::setChromeTracer(&tracer);
    std::ostringstream text;
    obs::TextSink sink(text);
    obs::addSink(&sink);
    obs::ChannelMask saved = obs::channelMask();
    obs::enableChannelsByName("DRAMCtrl");

    std::string marker = "job" + std::to_string(idx);
    {
        Simulator sim;
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        DRAMCtrl ctrl(sim, marker, cfg,
                      AddrRange(0, cfg.org.channelCapacity));
        TestRequestor req(sim, "req");
        req.port().bind(ctrl.port());
        for (unsigned i = 0; i <= idx % 3; ++i)
            req.inject(0, MemCmd::ReadReq, i * 64);
        sim.run(fromUs(5));
        EXPECT_TRUE(req.allResponded());
    }

    obs::setChannelMask(saved);
    obs::removeSink(&sink);
    obs::setChromeTracer(nullptr);

    std::ostringstream json;
    tracer.write(json);
    return {json.str(), text.str()};
}

TEST(ObsParallel, PerThreadSinksNeverInterleave)
{
    setThrowOnError(true);
    exec::BatchRunner runner(kJobs);
    std::vector<std::pair<std::string, std::string>> outs(kRuns);
    std::size_t errors = runner.run<std::pair<std::string, std::string>>(
        kRuns, [](std::size_t i) { return runObservedJob(i); },
        [&](const exec::JobOutcome<
            std::pair<std::string, std::string>> &out) {
            ASSERT_TRUE(out.ok) << out.error;
            outs[out.index] = out.value;
        });
    setThrowOnError(false);
    ASSERT_EQ(errors, 0u);

    for (std::size_t i = 0; i < kRuns; ++i) {
        const std::string &json = outs[i].first;
        const std::string &text = outs[i].second;
        const std::string own = "job" + std::to_string(i);

        // Every Chrome trace is complete, valid JSON...
        EXPECT_TRUE(structurallyValidJson(json)) << "run " << i;
        EXPECT_NE(json.find("{\"name\": \"" + own + "\"}"),
                  std::string::npos)
            << "run " << i;
        // ...and carries no other job's events; same for the text
        // trace (an interleaved line from another thread would name a
        // different controller).
        for (std::size_t j = 0; j < kRuns; ++j) {
            if (j == i)
                continue;
            const std::string other =
                "job" + std::to_string(j) + ".";
            EXPECT_EQ(json.find(other), std::string::npos)
                << "run " << i << " contains run " << j;
            EXPECT_EQ(text.find(other), std::string::npos)
                << "run " << i << " text contains run " << j;
        }
        EXPECT_NE(text.find(own + ":"), std::string::npos)
            << "run " << i << " text trace empty:\n"
            << text;
    }
}

TEST(ObsParallel, SharedRegistryTakesConcurrentTraffic)
{
    MetricsRegistry reg;
    // Pre-register from the main thread and also register lazily from
    // the workers — both paths must be race-free.
    reg.counter("batch.jobs_completed", "jobs finished");

    exec::BatchRunner runner(kJobs);
    runner.run<int>(
        64,
        [&reg](std::size_t i) {
            reg.counter("batch.jobs_completed").inc();
            reg.counter("batch.requests").inc(10);
            reg.gauge("batch.last_index")
                .set(static_cast<double>(i));
            // Rendering from a worker while others write is safe for
            // the counter/gauge namespace (no stats tree attached).
            std::ostringstream os;
            reg.writeProm(os);
            return 0;
        });

    EXPECT_EQ(reg.counter("batch.jobs_completed").value(), 64u);
    EXPECT_EQ(reg.counter("batch.requests").value(), 640u);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
}

TEST(ObsParallel, ServerServesWhileWorkersPublish)
{
    MetricsRegistry reg;
    obs::MetricsServer server("0");
    server.start();

    exec::BatchRunner runner(kJobs);
    runner.run<int>(
        32,
        [&](std::size_t) {
            reg.counter("n").inc();
            std::ostringstream prom, json;
            reg.writeProm(prom);
            reg.writeJson(json);
            server.publish(prom.str(), json.str());
            return 0;
        });
    server.stop();
    EXPECT_EQ(reg.counter("n").value(), 32u);
}

} // namespace
} // namespace dramctrl
