/**
 * @file
 * Cross-standard conformance suite (`ctest -R standards_`).
 *
 * Every registered preset — DDR3-era and the bank-grouped DDR4 /
 * LPDDR4 / HBM2 standards alike — runs the same table of
 * (command pair -> minimum separation) scenarios against the
 * ProtocolChecker: a hand-built command stream at exactly the minimum
 * separation must pass, and the same stream one tick under must be
 * flagged with the scenario's rule. The table derives every
 * separation from the preset's own timing set, so a new preset is
 * covered the moment it registers.
 *
 * Grouped organisations additionally pin down the split column/ACT
 * rules (tCCD_L within a bank group vs tCCD_S across groups, tRRD_L
 * vs tRRD) and the same-bank refresh blackout (tRFCsb), and a
 * behavioural test demonstrates the scheduling consequence on both
 * controller models: interleaving reads across bank groups (tCCD_S)
 * finishes sooner than interleaving within one group (tCCD_L), with
 * the checker clean on both streams. Finally, the three new standards
 * run the event-vs-cycle differential harness end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "dram/addr_decoder.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_presets.hh"
#include "dram/protocol_checker.hh"
#include "harness/testbench.hh"
#include "validate/config_fuzzer.hh"
#include "validate/diff_runner.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;

/**
 * One conformance scenario: build(delta) returns a command stream
 * whose critical separation is (minimum + delta) ticks. delta = 0
 * must be compliant; delta = -1 must violate `rule`.
 */
struct Scenario
{
    std::string name;
    std::string rule;
    std::function<std::vector<CmdRecord>(long long delta)> build;
};

Tick
at(Tick base, long long delta)
{
    return base + static_cast<Tick>(delta);
}

std::string
describeViolations(const std::vector<ProtocolViolation> &v,
                   unsigned n = 4)
{
    std::string s;
    for (unsigned i = 0; i < std::min<std::size_t>(n, v.size()); ++i)
        s += v[i].toString() + "\n";
    return s;
}

bool
hasRule(const std::vector<ProtocolViolation> &v, const std::string &r)
{
    return std::any_of(v.begin(), v.end(),
                       [&](const ProtocolViolation &viol) {
                           return viol.rule == r;
                       });
}

/**
 * The conformance table for one preset. Banks are picked under the
 * group-minor numbering: bank 1 is always in a different group than
 * bank 0 (when groups exist), while bank `bankGroupsPerRank` is the
 * next bank of group 0.
 */
std::vector<Scenario>
scenarioTable(const DRAMOrg &org, const DRAMTiming &t)
{
    std::vector<Scenario> table;
    const bool grouped = org.hasBankGroups();
    const unsigned crossBank = 1;
    const unsigned sameGroupBank = grouped ? org.bankGroupsPerRank : 1;

    table.push_back(
        {"act_to_column_tRCD", "tRCD", [=](long long d) {
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Act, 0, 0, 5},
                 {at(t.tRCD, d), DRAMCmd::Rd, 0, 0, 5},
             };
         }});

    table.push_back(
        {"act_to_precharge_tRAS", "tRAS", [=](long long d) {
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Act, 0, 0, 5},
                 {at(t.tRAS, d), DRAMCmd::Pre, 0, 0, 0},
             };
         }});

    table.push_back(
        {"precharge_to_act_tRP", "tRP", [=](long long d) {
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Act, 0, 0, 5},
                 {t.tRAS, DRAMCmd::Pre, 0, 0, 0},
                 {at(t.tRAS + t.tRP, d), DRAMCmd::Act, 0, 0, 6},
             };
         }});

    // Rank-wide ACT-to-ACT. With bank groups this is the short
    // (cross-group) spacing; bank 1 is cross-group by construction.
    table.push_back(
        {"act_to_act_tRRD", "tRRD", [=](long long d) {
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Act, 0, 0, 5},
                 {at(t.tRRD, d), DRAMCmd::Act, 0, crossBank, 5},
             };
         }});

    if (grouped) {
        table.push_back(
            {"same_group_act_tRRD_L", "tRRD_L", [=](long long d) {
                 return std::vector<CmdRecord>{
                     {0, DRAMCmd::Act, 0, 0, 5},
                     {at(t.tRRDLong(), d), DRAMCmd::Act, 0,
                      sameGroupBank, 5},
                 };
             }});
    }

    // Column-to-column. Flat organisations use the single tCCD
    // (= tBURST) rule; grouped ones split it into long (same group,
    // which subsumes same bank) and short (cross group).
    if (!grouped) {
        table.push_back(
            {"column_pair_tCCD", "tCCD", [=](long long d) {
                 return std::vector<CmdRecord>{
                     {0, DRAMCmd::Act, 0, 0, 5},
                     {t.tRCD, DRAMCmd::Rd, 0, 0, 5},
                     {at(t.tRCD + t.tBURST, d), DRAMCmd::Rd, 0, 0,
                      5},
                 };
             }});
    } else {
        table.push_back(
            {"same_group_column_tCCD_L", "tCCD_L", [=](long long d) {
                 return std::vector<CmdRecord>{
                     {0, DRAMCmd::Act, 0, 0, 5},
                     {t.tRCD, DRAMCmd::Rd, 0, 0, 5},
                     {at(t.tRCD + t.tCCDLong(), d), DRAMCmd::Rd, 0,
                      0, 5},
                 };
             }});
        table.push_back(
            {"cross_group_column_tCCD_S", "tCCD_S",
             [=](long long d) {
                 // Both banks activated (tRRD apart), both reads
                 // tRCD-legal; the second read trails the first by
                 // the short spacing only.
                 Tick first = t.tRRD + t.tRCD;
                 return std::vector<CmdRecord>{
                     {0, DRAMCmd::Act, 0, 0, 5},
                     {t.tRRD, DRAMCmd::Act, 0, crossBank, 5},
                     {first, DRAMCmd::Rd, 0, 0, 5},
                     {at(first + t.tCCDShort(), d), DRAMCmd::Rd, 0,
                      crossBank, 5},
                 };
             }});
    }

    table.push_back(
        {"write_to_read_tWTR", "tWTR", [=](long long d) {
             Tick wr_end = t.tRCD + t.tCL + t.tBURST;
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Act, 0, 0, 5},
                 {t.tRCD, DRAMCmd::Wr, 0, 0, 5},
                 {at(wr_end + t.tWTR, d), DRAMCmd::Rd, 0, 0, 5},
             };
         }});

    table.push_back(
        {"read_to_write_tRTW", "tRTW", [=](long long d) {
             // Write data must start tRTW after read data ends:
             // wr_tick + tCL = (rd_tick + tCL + tBURST) + tRTW.
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Act, 0, 0, 5},
                 {t.tRCD, DRAMCmd::Rd, 0, 0, 5},
                 {at(t.tRCD + t.tBURST + t.tRTW, d), DRAMCmd::Wr, 0,
                  0, 5},
             };
         }});

    // Write recovery before precharge; only meaningful when the tWR
    // edge lands after the tRAS edge, which holds for every current
    // preset (tRCD + tCL + tBURST + tWR > tRAS).
    if (t.tRCD + t.tCL + t.tBURST + t.tWR > t.tRAS + 1) {
        table.push_back(
            {"write_recovery_tWR", "tWR", [=](long long d) {
                 Tick wr_end = t.tRCD + t.tCL + t.tBURST;
                 return std::vector<CmdRecord>{
                     {0, DRAMCmd::Act, 0, 0, 5},
                     {t.tRCD, DRAMCmd::Wr, 0, 0, 5},
                     {at(wr_end + t.tWR, d), DRAMCmd::Pre, 0, 0, 0},
                 };
             }});
    }

    table.push_back(
        {"refresh_blackout_tRFC", "tRFC", [=](long long d) {
             return std::vector<CmdRecord>{
                 {0, DRAMCmd::Ref, 0, 0, 0},
                 {at(t.tRFC, d), DRAMCmd::Act, 0, 0, 5},
             };
         }});

    if (t.tRFCsb != 0) {
        // Same-bank refresh blackout: armed by the timing set alone
        // (no per-bank refresh manager attached).
        table.push_back(
            {"same_bank_refresh_tRFCsb", "tRFCpb", [=](long long d) {
                 return std::vector<CmdRecord>{
                     {0, DRAMCmd::RefPb, 0, 0, 0},
                     {at(t.tRFCsb, d), DRAMCmd::Act, 0, 0, 5},
                 };
             }});
    }

    // Rolling activation window. The one-tick-under variant needs the
    // tXAW edge to still respect tRRD from the previous activate, or
    // the wrong rule would (also) fire.
    if (t.activationLimit > 0 &&
        (t.activationLimit - 1) * t.tRRD + t.tRRD + 1 <= t.tXAW) {
        table.push_back(
            {"activation_window_tXAW", "tXAW", [=](long long d) {
                 std::vector<CmdRecord> log;
                 for (unsigned i = 0; i < t.activationLimit; ++i)
                     log.push_back({i * t.tRRD, DRAMCmd::Act, 0, i,
                                    0});
                 log.push_back({at(t.tXAW, d), DRAMCmd::Act, 0,
                                t.activationLimit, 0});
                 return log;
             }});
    }

    return table;
}

class StandardsConformance
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StandardsConformance, MinimumSeparationsPassOneTickUnderFails)
{
    const DRAMCtrlConfig cfg = presets::byName(GetParam());
    const auto table = scenarioTable(cfg.org, cfg.timing);
    ASSERT_GE(table.size(), 8u);

    for (const Scenario &sc : table) {
        ProtocolChecker checker(cfg.org, cfg.timing);
        auto clean = checker.check(sc.build(0));
        EXPECT_TRUE(clean.empty())
            << GetParam() << "/" << sc.name
            << ": compliant stream flagged:\n"
            << describeViolations(clean);

        auto under = checker.check(sc.build(-1));
        EXPECT_FALSE(under.empty())
            << GetParam() << "/" << sc.name
            << ": one tick under the minimum not flagged";
        EXPECT_TRUE(hasRule(under, sc.rule))
            << GetParam() << "/" << sc.name << ": expected rule '"
            << sc.rule << "', got:\n"
            << describeViolations(under);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, StandardsConformance,
    ::testing::ValuesIn(presets::names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------
// Group/same-bank refresh semantics beyond the pairwise table.
// ---------------------------------------------------------------

TEST(StandardsChecker, SameBankRefreshLeavesSiblingBanksFree)
{
    // The tRFCsb blackout is bank-scoped: a sibling bank may activate
    // immediately, only the refreshed bank must wait.
    for (const std::string &name : presets::names()) {
        DRAMCtrlConfig cfg = presets::byName(name);
        if (cfg.timing.tRFCsb == 0)
            continue;
        ProtocolChecker checker(cfg.org, cfg.timing);
        std::vector<CmdRecord> log = {
            {0, DRAMCmd::RefPb, 0, 0, 0},
            {cfg.timing.tRRD, DRAMCmd::Act, 0, 1, 5},
        };
        auto v = checker.check(log);
        EXPECT_TRUE(v.empty())
            << name << ": sibling bank blocked by a same-bank "
            << "refresh:\n"
            << describeViolations(v);
    }
}

TEST(StandardsChecker, CrossGroupPairToleratesShortSpacingOnly)
{
    // The defining asymmetry: a column pair spaced tCCD_S apart is
    // legal across groups but illegal within one (tCCD_L > tCCD_S).
    for (const std::string &name : presets::names()) {
        DRAMCtrlConfig cfg = presets::byName(name);
        const DRAMOrg &org = cfg.org;
        const DRAMTiming &t = cfg.timing;
        if (!org.hasBankGroups() || t.tCCDLong() <= t.tCCDShort())
            continue;

        auto pair = [&](unsigned second_bank) {
            Tick first = t.tRRD + t.tRCD;
            return std::vector<CmdRecord>{
                {0, DRAMCmd::Act, 0, 0, 5},
                {t.tRRDLong(), DRAMCmd::Act, 0, second_bank, 5},
                {first, DRAMCmd::Rd, 0, 0, 5},
                {first + t.tCCDShort(), DRAMCmd::Rd, 0, second_bank,
                 5},
            };
        };

        ProtocolChecker checker(org, t);
        auto cross = checker.check(pair(1)); // different group
        EXPECT_TRUE(cross.empty())
            << name << ": cross-group pair at tCCD_S flagged:\n"
            << describeViolations(cross);

        auto same =
            checker.check(pair(org.bankGroupsPerRank)); // group 0
        EXPECT_TRUE(hasRule(same, "tCCD_L"))
            << name << ": same-group pair at tCCD_S not flagged as "
            << "tCCD_L:\n"
            << describeViolations(same);
    }
}

// ---------------------------------------------------------------
// Behavioural demonstration: bank-group-aware scheduling.
// ---------------------------------------------------------------

struct InterleaveResult
{
    Tick lastResponse = 0;
    std::uint64_t violations = 0;
};

/**
 * Issue a burst of reads alternating between bank 0 and @p sibling
 * (same row, distinct columns) and report when the last response
 * lands, plus the checker verdict on the emitted command stream.
 */
InterleaveResult
runInterleave(CtrlModel model, unsigned sibling)
{
    DRAMCtrlConfig cfg = presets::ddr4_2400();
    cfg.timing.tREFI = 0; // keep the stream free of refresh noise
    cfg.check();

    Simulator sim;
    CmdLogger logger;
    auto ctrl = harness::makeController(
        sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity),
        model);
    ctrl->setCmdLogger(&logger);

    testutil::TestRequestor req(sim, "req");
    req.port().bind(ctrl->port());

    AddrDecoder dec(cfg.org, cfg.addrMapping);
    constexpr unsigned kReads = 24;
    for (unsigned i = 0; i < kReads; ++i) {
        DRAMAddr da;
        da.bank = (i % 2 == 0) ? 0 : sibling;
        da.row = 3;
        da.col = i;
        req.inject(0, MemCmd::ReadReq, dec.encode(da));
    }
    sim.run(fromUs(100));
    EXPECT_TRUE(req.allResponded());

    InterleaveResult r;
    for (const auto &resp : req.responses())
        r.lastResponse = std::max(r.lastResponse, resp.tick);

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty()) << describeViolations(v);
    r.violations = v.size();
    return r;
}

class StandardsBehaviour : public ::testing::TestWithParam<CtrlModel>
{
};

TEST_P(StandardsBehaviour, CrossGroupInterleaveBeatsSameGroup)
{
    const DRAMCtrlConfig cfg = presets::ddr4_2400();
    // Bank 1 shares no group with bank 0; bank `bankGroupsPerRank`
    // is bank 0's group mate.
    ASSERT_NE(cfg.org.bankGroup(0), cfg.org.bankGroup(1));
    ASSERT_EQ(cfg.org.bankGroup(0),
              cfg.org.bankGroup(cfg.org.bankGroupsPerRank));

    InterleaveResult cross = runInterleave(GetParam(), 1);
    InterleaveResult same =
        runInterleave(GetParam(), cfg.org.bankGroupsPerRank);

    EXPECT_EQ(cross.violations, 0u);
    EXPECT_EQ(same.violations, 0u);
    // Same-group interleave is column-limited by tCCD_L, cross-group
    // by tCCD_S (= tBURST); the gap over 24 reads is far larger than
    // any scheduling jitter.
    EXPECT_LT(cross.lastResponse, same.lastResponse)
        << "cross-group interleave did not finish sooner ("
        << toNs(cross.lastResponse) << " ns vs "
        << toNs(same.lastResponse) << " ns)";
}

INSTANTIATE_TEST_SUITE_P(
    BothModels, StandardsBehaviour,
    ::testing::Values(CtrlModel::Event, CtrlModel::Cycle),
    [](const ::testing::TestParamInfo<CtrlModel> &info) {
        return std::string(harness::toString(info.param));
    });

// ---------------------------------------------------------------
// Event-vs-cycle differential over the new standards.
// ---------------------------------------------------------------

class StandardsDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StandardsDifferential, EventAndCycleModelsAgree)
{
    validate::FuzzCase fc;
    fc.presetName = GetParam();
    fc.cfg = presets::byName(GetParam());
    fc.cfg.writeLowThreshold = 0.0;
    fc.stream.numRequests = 400;
    fc.stream.readPct = 70;
    fc.stream.windowSize = std::min<std::uint64_t>(
        fc.stream.windowSize, fc.cfg.org.channelCapacity);

    validate::DiffResult dr =
        validate::runDiff(fc, /*streamSeed=*/12345,
                          validate::DiffOptions{});
    EXPECT_TRUE(dr.pass) << dr.describe();
}

INSTANTIATE_TEST_SUITE_P(
    NewPresets, StandardsDifferential,
    ::testing::Values(std::string("ddr4_2400"),
                      std::string("lpddr4_3200"),
                      std::string("hbm2")),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace dramctrl
