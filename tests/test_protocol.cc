/**
 * @file
 * Protocol checker tests, in two halves:
 *
 *  1. The checker itself: hand-built command streams with known
 *     violations must be flagged, clean ones must pass.
 *  2. Compliance audits: both controller models, across page
 *     policies, mixes and configurations (including power-down and
 *     refresh), must emit command streams with zero violations —
 *     the verification backstop for the event model's analytic
 *     timing computations (Section II-B/II-D).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cyclesim/cycle_ctrl.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/protocol_checker.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/random_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;

DRAMOrg
checkerOrg()
{
    return testutil::bareTimingConfig().org;
}

DRAMTiming
checkerTiming()
{
    return testutil::bareTimingConfig().timing;
}

std::string
firstViolations(const std::vector<ProtocolViolation> &v, unsigned n = 3)
{
    std::string s;
    for (unsigned i = 0; i < std::min<std::size_t>(n, v.size()); ++i)
        s += v[i].toString() + "\n";
    return s;
}

// ---------------------------------------------------------------
// Half 1: the checker detects seeded violations.
// ---------------------------------------------------------------

TEST(ProtocolCheckerTest, CleanSingleAccessPasses)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(13.75), DRAMCmd::Rd, 0, 0, 5},
        {fromNs(50), DRAMCmd::Pre, 0, 0, 0},
    };
    auto v = checker.check(log);
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolCheckerTest, DetectsTrcdViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(5), DRAMCmd::Rd, 0, 0, 5}, // way before tRCD
    };
    auto v = checker.check(log);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "tRCD");
}

TEST(ProtocolCheckerTest, DetectsColumnToClosedBank)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {{0, DRAMCmd::Rd, 0, 0, 5}};
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "state");
}

TEST(ProtocolCheckerTest, DetectsWrongRow)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(20), DRAMCmd::Rd, 0, 0, 6},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "state");
}

TEST(ProtocolCheckerTest, DetectsEarlyPrecharge)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(10), DRAMCmd::Pre, 0, 0, 0}, // before tRAS
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRAS");
}

TEST(ProtocolCheckerTest, DetectsEarlyReactivate)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(35), DRAMCmd::Pre, 0, 0, 0},
        {fromNs(36), DRAMCmd::Act, 0, 0, 6}, // before tRP
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRP");
}

TEST(ProtocolCheckerTest, DetectsTrrdViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(2), DRAMCmd::Act, 0, 1, 5}, // before tRRD
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRRD");
}

TEST(ProtocolCheckerTest, DetectsTxawViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    // Five activates six ns apart: the fifth lands at 24 ns, inside
    // the 30 ns window of the first.
    std::vector<CmdRecord> log;
    for (unsigned b = 0; b < 5; ++b)
        log.push_back(
            {b * fromNs(6), DRAMCmd::Act, 0, b, 0});
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tXAW");
}

TEST(ProtocolCheckerTest, DetectsBusOverlap)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(6), DRAMCmd::Act, 0, 1, 5},
        {fromNs(14), DRAMCmd::Rd, 0, 0, 5},
        // tRCD-legal (6 + 13.75 = 19.75) but its data window starts
        // inside the first read's (14 + tCL .. + tBURST).
        {fromNs(19.8), DRAMCmd::Rd, 0, 1, 5},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "bus");
}

TEST(ProtocolCheckerTest, DetectsTwtrViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(14), DRAMCmd::Wr, 0, 0, 5},
        // Write data ends at 14 + 13.75 + 6 = 33.75 ns; a read command
        // at 34 ns violates tWTR (7.5 ns).
        {fromNs(34), DRAMCmd::Rd, 0, 0, 5},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tWTR");
}

TEST(ProtocolCheckerTest, DetectsRefreshWithOpenBank)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(100), DRAMCmd::Ref, 0, 0, 0},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "state");
}

TEST(ProtocolCheckerTest, DetectsActDuringRefresh)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Ref, 0, 0, 0},
        {fromNs(50), DRAMCmd::Act, 0, 0, 5}, // tRFC is 160 ns
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRFC");
}

TEST(ProtocolCheckerTest, SortsOutOfOrderInput)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {fromNs(13.75), DRAMCmd::Rd, 0, 0, 5},
        {0, DRAMCmd::Act, 0, 0, 5},
    };
    auto v = checker.check(log);
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

// ---------------------------------------------------------------
// Half 2: compliance audits of the live controllers.
// ---------------------------------------------------------------

using AuditParam = std::tuple<CtrlModel, PagePolicy, unsigned>;

class ProtocolAudit : public ::testing::TestWithParam<AuditParam>
{
  public:
    static std::string
    name(const ::testing::TestParamInfo<AuditParam> &info)
    {
        const auto &[model, page, pct] = info.param;
        return std::string(harness::toString(model)) + "_" +
               toString(page) + "_rd" + std::to_string(pct);
    }
};

TEST_P(ProtocolAudit, RandomTrafficIsCompliant)
{
    const auto &[model, page, pct] = GetParam();

    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = page;
    cfg.addrMapping = page == PagePolicy::Open
                          ? AddrMapping::RoRaBaCoCh
                          : AddrMapping::RoCoRaBaCh;
    cfg.timing.tREFI = fromUs(2); // include refreshes in the audit
    cfg.writeLowThreshold = 0.0;

    CmdLogger logger;
    std::unique_ptr<MemCtrlBase> ctrl = harness::makeController(
        sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity),
        model);
    if (model == CtrlModel::Event)
        dynamic_cast<DRAMCtrl &>(*ctrl).setCmdLogger(&logger);
    else
        dynamic_cast<cyclesim::CycleDRAMCtrl &>(*ctrl).setCmdLogger(
            &logger);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = pct;
    gc.minITT = fromNs(3);
    gc.maxITT = fromNs(40);
    gc.numRequests = 1500;
    gc.seed = 97;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl->port());

    harness::runUntil(sim, [&] { return gen.done(); });
    ASSERT_TRUE(gen.done());
    ASSERT_GT(logger.size(), 100u);

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty())
        << v.size() << " violations, first:\n" << firstViolations(v);
}

INSTANTIATE_TEST_SUITE_P(
    EventModel, ProtocolAudit,
    ::testing::Combine(::testing::Values(CtrlModel::Event),
                       ::testing::Values(PagePolicy::Open,
                                         PagePolicy::OpenAdaptive,
                                         PagePolicy::Closed,
                                         PagePolicy::ClosedAdaptive),
                       ::testing::Values(100u, 50u, 0u)),
    ProtocolAudit::name);

INSTANTIATE_TEST_SUITE_P(
    CycleModel, ProtocolAudit,
    ::testing::Combine(::testing::Values(CtrlModel::Cycle),
                       ::testing::Values(PagePolicy::Open,
                                         PagePolicy::Closed),
                       ::testing::Values(100u, 50u, 0u)),
    ProtocolAudit::name);

TEST(ProtocolAuditExtra, PowerDownStreamIsCompliant)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.enablePowerDown = true;
    cfg.powerDownDelay = fromNs(100);
    cfg.timing.tREFI = fromUs(2);

    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);
    testutil::TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    // Sparse accesses with power-down episodes and refreshes between.
    for (unsigned i = 0; i < 10; ++i)
        req.inject(i * fromUs(3), MemCmd::ReadReq,
                   static_cast<Addr>(i) * 8192);
    sim.run(fromUs(50));
    ASSERT_TRUE(req.allResponded());
    EXPECT_GT(ctrl.ctrlStats().powerDownEntries.value(), 0.0);

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolAuditExtra, TwoRankStreamIsCompliant)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.org.ranksPerChannel = 2;
    cfg.org.channelCapacity *= 2;
    cfg.timing.tREFI = fromUs(2);

    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = fromNs(5);
    gc.numRequests = 1500;
    gc.seed = 19;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());
    harness::runUntil(sim, [&] { return gen.done(); });

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolAuditExtra, DramAwareSaturationIsCompliant)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.tREFI = fromUs(1);

    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);

    DramGenConfig gc;
    gc.org = cfg.org;
    gc.strideBytes = 256;
    gc.numBanksTarget = 8;
    gc.readPct = 50;
    gc.minITT = gc.maxITT = fromNs(3);
    gc.numRequests = 4000;
    gc.seed = 5;
    DramGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());
    harness::runUntil(sim, [&] { return gen.done(); });

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty())
        << v.size() << " violations, first:\n" << firstViolations(v);
}

} // namespace
} // namespace dramctrl
