/**
 * @file
 * Protocol checker tests, in two halves:
 *
 *  1. The checker itself: hand-built command streams with known
 *     violations must be flagged, clean ones must pass.
 *  2. Compliance audits: both controller models, across page
 *     policies, mixes and configurations (including power-down and
 *     refresh), must emit command streams with zero violations —
 *     the verification backstop for the event model's analytic
 *     timing computations (Section II-B/II-D).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cyclesim/cycle_ctrl.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/protocol_checker.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/random_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;

DRAMOrg
checkerOrg()
{
    return testutil::bareTimingConfig().org;
}

DRAMTiming
checkerTiming()
{
    return testutil::bareTimingConfig().timing;
}

std::string
firstViolations(const std::vector<ProtocolViolation> &v, unsigned n = 3)
{
    std::string s;
    for (unsigned i = 0; i < std::min<std::size_t>(n, v.size()); ++i)
        s += v[i].toString() + "\n";
    return s;
}

// ---------------------------------------------------------------
// Half 1: the checker detects seeded violations.
// ---------------------------------------------------------------

TEST(ProtocolCheckerTest, CleanSingleAccessPasses)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(13.75), DRAMCmd::Rd, 0, 0, 5},
        {fromNs(50), DRAMCmd::Pre, 0, 0, 0},
    };
    auto v = checker.check(log);
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolCheckerTest, DetectsTrcdViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(5), DRAMCmd::Rd, 0, 0, 5}, // way before tRCD
    };
    auto v = checker.check(log);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "tRCD");
}

TEST(ProtocolCheckerTest, DetectsColumnToClosedBank)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {{0, DRAMCmd::Rd, 0, 0, 5}};
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "state");
}

TEST(ProtocolCheckerTest, DetectsWrongRow)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(20), DRAMCmd::Rd, 0, 0, 6},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "state");
}

TEST(ProtocolCheckerTest, DetectsEarlyPrecharge)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(10), DRAMCmd::Pre, 0, 0, 0}, // before tRAS
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRAS");
}

TEST(ProtocolCheckerTest, DetectsEarlyReactivate)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(35), DRAMCmd::Pre, 0, 0, 0},
        {fromNs(36), DRAMCmd::Act, 0, 0, 6}, // before tRP
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRP");
}

TEST(ProtocolCheckerTest, DetectsTrrdViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(2), DRAMCmd::Act, 0, 1, 5}, // before tRRD
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRRD");
}

TEST(ProtocolCheckerTest, DetectsTxawViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    // Five activates six ns apart: the fifth lands at 24 ns, inside
    // the 30 ns window of the first.
    std::vector<CmdRecord> log;
    for (unsigned b = 0; b < 5; ++b)
        log.push_back(
            {b * fromNs(6), DRAMCmd::Act, 0, b, 0});
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tXAW");
}

TEST(ProtocolCheckerTest, DetectsBusOverlap)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(6), DRAMCmd::Act, 0, 1, 5},
        {fromNs(14), DRAMCmd::Rd, 0, 0, 5},
        // tRCD-legal (6 + 13.75 = 19.75) but its data window starts
        // inside the first read's (14 + tCL .. + tBURST).
        {fromNs(19.8), DRAMCmd::Rd, 0, 1, 5},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "bus");
}

TEST(ProtocolCheckerTest, DetectsTwtrViolation)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(14), DRAMCmd::Wr, 0, 0, 5},
        // Write data ends at 14 + 13.75 + 6 = 33.75 ns; a read command
        // at 34 ns violates tWTR (7.5 ns).
        {fromNs(34), DRAMCmd::Rd, 0, 0, 5},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tWTR");
}

TEST(ProtocolCheckerTest, DetectsRefreshWithOpenBank)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(100), DRAMCmd::Ref, 0, 0, 0},
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "state");
}

TEST(ProtocolCheckerTest, DetectsActDuringRefresh)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Ref, 0, 0, 0},
        {fromNs(50), DRAMCmd::Act, 0, 0, 5}, // tRFC is 160 ns
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRFC");
}

TEST(ProtocolCheckerTest, SortsOutOfOrderInput)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    std::vector<CmdRecord> log = {
        {fromNs(13.75), DRAMCmd::Rd, 0, 0, 5},
        {0, DRAMCmd::Act, 0, 0, 5},
    };
    auto v = checker.check(log);
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

// ---------------------------------------------------------------
// Half 2: compliance audits of the live controllers.
// ---------------------------------------------------------------

using AuditParam = std::tuple<CtrlModel, PagePolicy, unsigned>;

class ProtocolAudit : public ::testing::TestWithParam<AuditParam>
{
  public:
    static std::string
    name(const ::testing::TestParamInfo<AuditParam> &info)
    {
        const auto &[model, page, pct] = info.param;
        return std::string(harness::toString(model)) + "_" +
               toString(page) + "_rd" + std::to_string(pct);
    }
};

TEST_P(ProtocolAudit, RandomTrafficIsCompliant)
{
    const auto &[model, page, pct] = GetParam();

    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = page;
    cfg.addrMapping = page == PagePolicy::Open
                          ? AddrMapping::RoRaBaCoCh
                          : AddrMapping::RoCoRaBaCh;
    cfg.timing.tREFI = fromUs(2); // include refreshes in the audit
    cfg.writeLowThreshold = 0.0;

    CmdLogger logger;
    std::unique_ptr<MemCtrlBase> ctrl = harness::makeController(
        sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity),
        model);
    if (model == CtrlModel::Event)
        dynamic_cast<DRAMCtrl &>(*ctrl).setCmdLogger(&logger);
    else
        dynamic_cast<cyclesim::CycleDRAMCtrl &>(*ctrl).setCmdLogger(
            &logger);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = pct;
    gc.minITT = fromNs(3);
    gc.maxITT = fromNs(40);
    gc.numRequests = 1500;
    gc.seed = 97;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl->port());

    harness::runUntil(sim, [&] { return gen.done(); });
    ASSERT_TRUE(gen.done());
    ASSERT_GT(logger.size(), 100u);

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty())
        << v.size() << " violations, first:\n" << firstViolations(v);
}

INSTANTIATE_TEST_SUITE_P(
    EventModel, ProtocolAudit,
    ::testing::Combine(::testing::Values(CtrlModel::Event),
                       ::testing::Values(PagePolicy::Open,
                                         PagePolicy::OpenAdaptive,
                                         PagePolicy::Closed,
                                         PagePolicy::ClosedAdaptive),
                       ::testing::Values(100u, 50u, 0u)),
    ProtocolAudit::name);

INSTANTIATE_TEST_SUITE_P(
    CycleModel, ProtocolAudit,
    ::testing::Combine(::testing::Values(CtrlModel::Cycle),
                       ::testing::Values(PagePolicy::Open,
                                         PagePolicy::Closed),
                       ::testing::Values(100u, 50u, 0u)),
    ProtocolAudit::name);

TEST(ProtocolAuditExtra, PowerDownStreamIsCompliant)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.enablePowerDown = true;
    cfg.powerDownDelay = fromNs(100);
    cfg.timing.tREFI = fromUs(2);

    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);
    testutil::TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    // Sparse accesses with power-down episodes and refreshes between.
    for (unsigned i = 0; i < 10; ++i)
        req.inject(i * fromUs(3), MemCmd::ReadReq,
                   static_cast<Addr>(i) * 8192);
    sim.run(fromUs(50));
    ASSERT_TRUE(req.allResponded());
    EXPECT_GT(ctrl.ctrlStats().powerDownEntries.value(), 0.0);

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolAuditExtra, TwoRankStreamIsCompliant)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.org.ranksPerChannel = 2;
    cfg.org.channelCapacity *= 2;
    cfg.timing.tREFI = fromUs(2);

    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = fromNs(5);
    gc.numRequests = 1500;
    gc.seed = 19;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());
    harness::runUntil(sim, [&] { return gen.done(); });

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolAuditExtra, DramAwareSaturationIsCompliant)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.tREFI = fromUs(1);

    CmdLogger logger;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.setCmdLogger(&logger);

    DramGenConfig gc;
    gc.org = cfg.org;
    gc.strideBytes = 256;
    gc.numBanksTarget = 8;
    gc.readPct = 50;
    gc.minITT = gc.maxITT = fromNs(3);
    gc.numRequests = 4000;
    gc.seed = 5;
    DramGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());
    harness::runUntil(sim, [&] { return gen.done(); });

    ProtocolChecker checker(cfg.org, cfg.timing);
    auto v = checker.check(logger.log());
    EXPECT_TRUE(v.empty())
        << v.size() << " violations, first:\n" << firstViolations(v);
}

// ---------------------------------------------------------------
// Refresh-deadline (tREFI slack) rule.
// ---------------------------------------------------------------

TEST(ProtocolCheckerTest, DetectsMissedRefreshDeadline)
{
    DRAMTiming t = checkerTiming();
    t.tREFI = fromUs(1); // default slack 9 => deadline at 9 us
    ProtocolChecker checker(checkerOrg(), t);
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Ref, 0, 0, 0},
        {fromUs(10), DRAMCmd::Act, 0, 0, 5}, // 10 us > 9 x tREFI
    };
    auto v = checker.check(log);
    ASSERT_FALSE(v.empty()) << "missed deadline not flagged";
    EXPECT_EQ(v[0].rule, "tREFI");
}

TEST(ProtocolCheckerTest, TimelyRefreshMeetsDeadline)
{
    DRAMTiming t = checkerTiming();
    t.tREFI = fromUs(1);
    ProtocolChecker checker(checkerOrg(), t);
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Ref, 0, 0, 0},
        {fromUs(5), DRAMCmd::Ref, 0, 0, 0},
        {fromUs(10), DRAMCmd::Act, 0, 0, 5}, // 5 us since last REF
    };
    auto v = checker.check(log);
    EXPECT_TRUE(v.empty()) << firstViolations(v);
}

TEST(ProtocolCheckerTest, RefreshDeadlineLapseFlaggedOnce)
{
    DRAMTiming t = checkerTiming();
    t.tREFI = fromUs(1);
    ProtocolChecker checker(checkerOrg(), t);
    // Several commands inside one overdue stretch: one report, not a
    // flood; a REF re-arms the rule.
    std::vector<CmdRecord> log = {
        {0, DRAMCmd::Ref, 0, 0, 0},
        {fromUs(10), DRAMCmd::Act, 0, 0, 5},
        {fromUs(10) + fromNs(20), DRAMCmd::Rd, 0, 0, 5},
        {fromUs(10) + fromNs(100), DRAMCmd::Pre, 0, 0, 0},
        {fromUs(11), DRAMCmd::Ref, 0, 0, 0},
        {fromUs(21), DRAMCmd::Act, 0, 0, 5}, // second lapse
    };
    auto v = checker.check(log);
    std::size_t deadline = 0;
    for (const auto &viol : v)
        if (viol.rule == "tREFI")
            ++deadline;
    EXPECT_EQ(deadline, 2u) << firstViolations(v, 6);
}

TEST(ProtocolCheckerTest, RefreshDeadlineDisabledBySlackOrTrefi)
{
    DRAMTiming t = checkerTiming();
    std::vector<CmdRecord> log = {
        {fromUs(50), DRAMCmd::Act, 0, 0, 5},
        {fromUs(50) + fromNs(20), DRAMCmd::Rd, 0, 0, 5},
    };

    // tREFI == 0 (refresh off) => rule off.
    ProtocolChecker off(checkerOrg(), t);
    EXPECT_TRUE(off.check(log).empty());

    // Slack 0 => rule off even with tREFI set.
    t.tREFI = fromUs(1);
    ProtocolChecker slackOff(checkerOrg(), t);
    slackOff.setRefSlack(0.0);
    EXPECT_TRUE(slackOff.check(log).empty());
}

// ---------------------------------------------------------------
// Online (incremental) mode.
// ---------------------------------------------------------------

TEST(ProtocolCheckerTest, OnlineModeReordersAndMatchesBatch)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    // Emission order != tick order (the event model computes future
    // launch ticks): the reorder heap must sort before checking.
    std::vector<CmdRecord> emitted = {
        {fromNs(13.75), DRAMCmd::Rd, 0, 0, 5},
        {0, DRAMCmd::Act, 0, 0, 5},
        {fromNs(80), DRAMCmd::Rd, 0, 1, 7},
        {fromNs(60), DRAMCmd::Act, 0, 1, 7},
    };
    for (const CmdRecord &r : emitted)
        checker.observe(r);
    EXPECT_EQ(checker.pendingRecords(), emitted.size());

    // Partial drain finalises only the settled prefix.
    checker.drainUpTo(fromNs(20));
    EXPECT_EQ(checker.commandsChecked(), 2u);
    EXPECT_EQ(checker.pendingRecords(), 2u);

    checker.finish();
    EXPECT_EQ(checker.commandsChecked(), emitted.size());
    EXPECT_EQ(checker.pendingRecords(), 0u);
    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST(ProtocolCheckerTest, OnlineModeDetectsViolationIncrementally)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    checker.observe({0, DRAMCmd::Act, 0, 0, 5});
    checker.observe({fromNs(5), DRAMCmd::Rd, 0, 0, 5}); // < tRCD
    checker.drainUpTo(fromNs(5));
    EXPECT_EQ(checker.violationCount(), 1u);
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_EQ(checker.violations().front().rule, "tRCD");

    // reset() must clear violations and rule-engine state alike.
    checker.reset();
    EXPECT_EQ(checker.violationCount(), 0u);
    checker.observe({0, DRAMCmd::Act, 0, 0, 5});
    checker.observe({fromNs(13.75), DRAMCmd::Rd, 0, 0, 5});
    checker.finish();
    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST(ProtocolCheckerTest, OnlineModeBoundsMemory)
{
    DRAMTiming t = checkerTiming();
    ProtocolChecker checker(checkerOrg(), t);
    checker.setMaxStoredViolations(8);
    // Never drain: the safety valve must keep the heap bounded while
    // still counting every violation past the storage cap.
    Tick when = 0;
    for (unsigned i = 0; i < 40000; ++i) {
        when += fromNs(50);
        checker.observe({when, DRAMCmd::Rd, 0, 0, 5}); // closed bank
    }
    EXPECT_LE(checker.pendingRecords(), 16384u);
    checker.finish();
    EXPECT_EQ(checker.violationCount(), 40000u);
    EXPECT_EQ(checker.violations().size(), 8u);
}

} // namespace
} // namespace dramctrl
