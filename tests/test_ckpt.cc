/**
 * @file
 * Checkpoint/restore round-trip properties (`ctest -R ckpt_`).
 *
 * The contract under test (docs/CHECKPOINT.md): running 0 -> T_end in
 * one piece and running 0 -> T_ckpt, saving, restoring into a freshly
 * built system and continuing to T_end produce byte-identical stats
 * JSON and identical command logs — for every DRAM preset, every
 * traffic pattern, both controller models, and fuzzer-drawn
 * configurations. Damaged snapshots (bit flips, truncation, config
 * mismatch) must fail with a clear fatal() naming the problem, never
 * crash or restore silently. Warm-start sweep rows must equal the
 * cold-path rows.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt.hh"
#include "dram/cmd_log.hh"
#include "dram/dram_presets.hh"
#include "dram/plugin/plugin.hh"
#include "exec/sweep.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "validate/config_fuzzer.hh"

namespace dramctrl {
namespace {

constexpr Tick kCkptAt = fromNs(800.0);
constexpr std::uint64_t kRequests = 300;
constexpr std::uint64_t kSeed = 7;

struct CkptCase
{
    std::string preset;
    std::string pattern; // linear | random | dram
    harness::CtrlModel model;
    unsigned readPct;
};

std::string
caseName(const testing::TestParamInfo<CkptCase> &info)
{
    return "ckpt_" + info.param.preset + "_" + info.param.pattern +
           "_" + harness::toString(info.param.model);
}

struct BuiltSystem
{
    std::unique_ptr<harness::SingleChannelSystem> tb;
    BaseGen *gen = nullptr;
};

BuiltSystem
buildSystem(const DRAMCtrlConfig &base_cfg, const std::string &pattern,
            harness::CtrlModel model, unsigned read_pct,
            std::uint64_t requests, std::uint64_t seed)
{
    DRAMCtrlConfig cfg = base_cfg;
    cfg.writeLowThreshold = 0.0; // drain fully so runs terminate
    cfg.check();

    BuiltSystem built;
    built.tb =
        std::make_unique<harness::SingleChannelSystem>(cfg, model);

    GenConfig gc;
    gc.windowSize =
        std::min<std::uint64_t>(cfg.org.channelCapacity, 1ULL << 22);
    gc.readPct = read_pct;
    gc.minITT = gc.maxITT = fromNs(6.0);
    gc.numRequests = requests;
    gc.seed = seed;

    if (pattern == "linear") {
        built.gen = &built.tb->addGen<LinearGen>(gc);
    } else if (pattern == "random") {
        built.gen = &built.tb->addGen<RandomGen>(gc);
    } else {
        DramGenConfig dgc;
        static_cast<GenConfig &>(dgc) = gc;
        dgc.org = cfg.org;
        dgc.mapping = cfg.addrMapping;
        dgc.strideBytes = 256;
        dgc.numBanksTarget = 4;
        built.gen = &built.tb->addGen<DramGen>(dgc);
    }
    return built;
}

std::string
statsJson(harness::SingleChannelSystem &tb)
{
    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    return os.str();
}

void
expectSameLog(const std::vector<CmdRecord> &got,
              const std::vector<CmdRecord> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].toString(), want[i].toString())
            << "command " << i << " differs";
    }
}

class CkptRoundTrip : public testing::TestWithParam<CkptCase>
{
};

TEST_P(CkptRoundTrip, SplitRunMatchesUninterrupted)
{
    const CkptCase &c = GetParam();
    DRAMCtrlConfig cfg = presets::byName(c.preset);

    // Reference: one uninterrupted run.
    BuiltSystem ref = buildSystem(cfg, c.pattern, c.model, c.readPct,
                                  kRequests, kSeed);
    CmdLogger refLog;
    ref.tb->ctrl().setCmdLogger(&refLog);
    ref.tb->runToCompletion([&] { return ref.gen->done(); });
    const std::string refStats = statsJson(*ref.tb);

    // Phase 1: run to the checkpoint tick and save.
    BuiltSystem pre = buildSystem(cfg, c.pattern, c.model, c.readPct,
                                  kRequests, kSeed);
    CmdLogger preLog;
    pre.tb->ctrl().setCmdLogger(&preLog);
    pre.tb->sim().run(kCkptAt);
    const std::string snapshot = ckpt::saveToString(pre.tb->sim());

    // Phase 2: fresh system, restore, continue to completion.
    BuiltSystem post = buildSystem(cfg, c.pattern, c.model, c.readPct,
                                   kRequests, kSeed);
    CmdLogger postLog;
    post.tb->ctrl().setCmdLogger(&postLog);
    ckpt::restoreFromString(post.tb->sim(), snapshot);
    EXPECT_EQ(post.tb->sim().curTick(), kCkptAt);
    post.tb->runToCompletion([&] { return post.gen->done(); });

    EXPECT_EQ(statsJson(*post.tb), refStats);

    std::vector<CmdRecord> joined = preLog.log();
    joined.insert(joined.end(), postLog.log().begin(),
                  postLog.log().end());
    expectSameLog(joined, refLog.log());
}

std::vector<CkptCase>
allCases()
{
    std::vector<CkptCase> cases;
    for (const std::string &preset : presets::names())
        for (const char *pattern : {"linear", "random", "dram"})
            cases.push_back(
                {preset, pattern, harness::CtrlModel::Event, 60});
    // The cycle comparator, one preset across every pattern.
    for (const char *pattern : {"linear", "random", "dram"})
        cases.push_back(
            {"ddr3_1333", pattern, harness::CtrlModel::Cycle, 60});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, CkptRoundTrip,
                         testing::ValuesIn(allCases()), caseName);

/** Fuzzer-drawn configurations must round-trip just like presets. */
TEST(CkptFuzz, ckpt_fuzzed_configs_round_trip)
{
    validate::FuzzerOptions fopts;
    fopts.numRequests = 120;
    for (std::uint64_t i = 0; i < 6; ++i) {
        Random rng(0xc0ffee + i);
        validate::FuzzCase fc = validate::sampleCase(rng, fopts);
        fc.cfg.writeLowThreshold = 0.0;
        const std::uint64_t seed = rng.next();

        auto build = [&] {
            BuiltSystem b;
            b.tb = std::make_unique<harness::SingleChannelSystem>(
                fc.cfg, harness::CtrlModel::Event);
            GenConfig gc;
            gc.windowSize = fc.stream.windowSize;
            gc.readPct = fc.stream.readPct;
            gc.minITT = fc.stream.minITT;
            gc.maxITT = fc.stream.maxITT;
            gc.numRequests = fopts.numRequests;
            gc.seed = seed;
            b.gen = &b.tb->addGen<RandomGen>(gc);
            return b;
        };

        BuiltSystem ref = build();
        ref.tb->runToCompletion([&] { return ref.gen->done(); });
        const std::string refStats = statsJson(*ref.tb);

        BuiltSystem pre = build();
        pre.tb->sim().run(fromNs(500.0));
        const std::string snapshot = ckpt::saveToString(pre.tb->sim());

        BuiltSystem post = build();
        ckpt::restoreFromString(post.tb->sim(), snapshot);
        post.tb->runToCompletion([&] { return post.gen->done(); });

        EXPECT_EQ(statsJson(*post.tb), refStats)
            << "fuzz case " << i << " (" << validate::summarize(fc)
            << ")";
    }
}

/**
 * Plugin chains must round-trip: ECC decode classes, PRAC counter
 * tables and pending alerts, and the per-bank refresh rotation are
 * part of the controller section (under "plugin.<kind>.*" keys), so
 * a split run continues with identical plugin behaviour — same
 * mitigation refreshes, same rotation slots, same error counters.
 */
TEST(CkptPlugin, ckpt_plugin_chains_round_trip)
{
    const char *chains[] = {"ecc", "prac", "refmgr", "refmgr-pb",
                            "ecc,prac,refmgr"};
    for (const char *chain : chains) {
        DRAMCtrlConfig cfg = presets::byName("ddr3_1333");
        std::string err;
        ASSERT_TRUE(plugin::parsePluginList(chain, cfg, err)) << err;
        for (PluginSpec &p : cfg.plugins) {
            if (p.kind == "ecc") {
                p.eccBer = 1e-3;
                p.eccSeed = 21;
            } else if (p.kind == "prac") {
                // Low threshold: alerts and mitigations straddle the
                // checkpoint, exercising the counter-table state.
                p.pracThreshold = 4;
            } else if (p.kind == "refmgr-pb") {
                // Short tREFI: the rotation advances before kCkptAt.
                cfg.timing.tREFI = fromUs(1.0);
            }
        }

        BuiltSystem ref = buildSystem(cfg, "random",
                                      harness::CtrlModel::Event, 60,
                                      kRequests, kSeed);
        CmdLogger refLog;
        ref.tb->ctrl().setCmdLogger(&refLog);
        ref.tb->runToCompletion([&] { return ref.gen->done(); });
        const std::string refStats = statsJson(*ref.tb);

        BuiltSystem pre = buildSystem(cfg, "random",
                                      harness::CtrlModel::Event, 60,
                                      kRequests, kSeed);
        CmdLogger preLog;
        pre.tb->ctrl().setCmdLogger(&preLog);
        pre.tb->sim().run(kCkptAt);
        const std::string snapshot =
            ckpt::saveToString(pre.tb->sim());

        BuiltSystem post = buildSystem(cfg, "random",
                                       harness::CtrlModel::Event, 60,
                                       kRequests, kSeed);
        CmdLogger postLog;
        post.tb->ctrl().setCmdLogger(&postLog);
        ckpt::restoreFromString(post.tb->sim(), snapshot);
        post.tb->runToCompletion([&] { return post.gen->done(); });

        EXPECT_EQ(statsJson(*post.tb), refStats)
            << "plugin chain '" << chain << "'";

        std::vector<CmdRecord> joined = preLog.log();
        joined.insert(joined.end(), postLog.log().begin(),
                      postLog.log().end());
        expectSameLog(joined, refLog.log());
    }
}

/**
 * Restoring a plugin-bearing snapshot into a system built without the
 * chain (or vice versa) must fail with a clear fatal(), never restore
 * silently with dangling plugin state.
 */
TEST(CkptPlugin, ckpt_plugin_chain_mismatch_is_fatal)
{
    BuiltSystem pre = buildSystem(presets::byName("ddr3_1333"),
                                  "random", harness::CtrlModel::Event,
                                  60, kRequests, kSeed);
    pre.tb->sim().run(kCkptAt);
    const std::string snapshot = ckpt::saveToString(pre.tb->sim());

    DRAMCtrlConfig withPlugins = presets::byName("ddr3_1333");
    std::string err;
    ASSERT_TRUE(plugin::parsePluginList("prac", withPlugins, err));
    BuiltSystem post = buildSystem(withPlugins, "random",
                                   harness::CtrlModel::Event, 60,
                                   kRequests, kSeed);
    setThrowOnError(true);
    EXPECT_THROW(ckpt::restoreFromString(post.tb->sim(), snapshot),
                 std::runtime_error);
    setThrowOnError(false);
}

std::string
makeSnapshot()
{
    BuiltSystem pre = buildSystem(presets::byName("ddr3_1333"),
                                  "random", harness::CtrlModel::Event,
                                  60, kRequests, kSeed);
    pre.tb->sim().run(kCkptAt);
    return ckpt::saveToString(pre.tb->sim());
}

/** Restore @p snapshot into a fresh default system, expecting fatal(). */
std::string
restoreExpectingFatal(const std::string &snapshot,
                      const std::string &preset = "ddr3_1333")
{
    BuiltSystem post = buildSystem(presets::byName(preset), "random",
                                   harness::CtrlModel::Event, 60,
                                   kRequests, kSeed);
    setThrowOnError(true);
    std::string message;
    try {
        ckpt::restoreFromString(post.tb->sim(), snapshot);
    } catch (const std::runtime_error &e) {
        message = e.what();
    }
    setThrowOnError(false);
    EXPECT_FALSE(message.empty())
        << "damaged snapshot restored without an error";
    return message;
}

TEST(CkptDamage, ckpt_corrupted_snapshot_names_the_section)
{
    const std::string good = makeSnapshot();
    // Flip one byte in the middle — lands in some section's payload,
    // which the per-section CRC must catch before anything restores.
    std::string bad = good;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0xff);
    std::string msg = restoreExpectingFatal(bad);
    EXPECT_NE(msg.find("checkpoint"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'"), std::string::npos)
        << "message should name the section: " << msg;
}

TEST(CkptDamage, ckpt_truncated_snapshot_fails_cleanly)
{
    const std::string good = makeSnapshot();
    std::string msg =
        restoreExpectingFatal(good.substr(0, good.size() / 3));
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
}

TEST(CkptDamage, ckpt_bad_magic_is_rejected)
{
    std::string msg = restoreExpectingFatal("not a checkpoint at all");
    EXPECT_NE(msg.find("checkpoint"), std::string::npos) << msg;
}

TEST(CkptDamage, ckpt_config_mismatch_is_rejected)
{
    // A ddr3_1333 snapshot must not restore into a ddr3_1600 system.
    const std::string good = makeSnapshot();
    std::string msg = restoreExpectingFatal(good, "ddr3_1600");
    EXPECT_NE(msg.find("mismatch"), std::string::npos) << msg;
}

/** Every byte of the snapshot matters: flips anywhere never crash. */
TEST(CkptDamage, ckpt_bit_flip_sweep_never_restores_silently)
{
    const std::string good = makeSnapshot();
    Random rng(42);
    for (int i = 0; i < 24; ++i) {
        const std::size_t pos = rng.next() % good.size();
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ (1u << (i % 8)));
        if (bad == good)
            continue;
        BuiltSystem post = buildSystem(
            presets::byName("ddr3_1333"), "random",
            harness::CtrlModel::Event, 60, kRequests, kSeed);
        setThrowOnError(true);
        try {
            ckpt::restoreFromString(post.tb->sim(), bad);
            // A flip in dead padding may legitimately restore; if it
            // does, the simulation must still be able to continue.
            post.tb->runToCompletion([&] { return post.gen->done(); });
        } catch (const std::runtime_error &) {
            // clean fatal: expected for most positions
        }
        setThrowOnError(false);
    }
}

TEST(CkptWarmStart, ckpt_warm_rows_equal_cold_rows)
{
    exec::SweepSpec spec;
    spec.presets = {"ddr3_1333", "lpddr3_1600"};
    spec.patterns = {"random"};
    spec.numSeeds = 2;
    spec.requests = 200;
    spec.warmupRequests = 100;

    std::vector<exec::SweepPoint> grid = exec::expandGrid(spec);
    ASSERT_EQ(grid.size(), 4u);

    // One snapshot per config group, shared by the group's seeds.
    std::vector<std::string> snapshots(2);
    for (std::size_t g = 0; g < 2; ++g)
        snapshots[g] =
            exec::captureWarmupSnapshot(grid[g * 2], spec);

    for (const exec::SweepPoint &pt : grid) {
        exec::SweepRow cold = exec::runSweepPoint(pt, spec);
        exec::SweepRow warm = exec::runMeasuredFromSnapshot(
            pt, spec, snapshots[exec::configGroupOf(pt, spec)]);
        EXPECT_EQ(exec::toCsv(warm), exec::toCsv(cold))
            << "point " << pt.index;
    }
}

TEST(CkptJson, ckpt_json_dump_lists_every_section)
{
    const std::string snapshot = makeSnapshot();
    std::istringstream is(snapshot);
    std::ostringstream os;
    ckpt::dumpJson(is, os);
    const std::string json = os.str();
    for (const char *section : {"\"sim\"", "\"stats\"", "\"mem_ctrl\"",
                                "\"gen\"", "\"format_version\""})
        EXPECT_NE(json.find(section), std::string::npos)
            << "missing " << section;
}

} // namespace
} // namespace dramctrl
