/**
 * @file
 * Tests for the configuration describer (the config.ini analogue).
 */

#include <gtest/gtest.h>

#include "dram/dram_presets.hh"

namespace dramctrl {
namespace {

TEST(DescribeTest, ContainsKeyOrganisationFields)
{
    std::string d = presets::ddr3_1333().describe();
    EXPECT_NE(d.find("burst length        8"), std::string::npos) << d;
    EXPECT_NE(d.find("banks per rank      8"), std::string::npos);
    EXPECT_NE(d.find("burst size          64 B"), std::string::npos);
    EXPECT_NE(d.find("channel capacity    2048 MiB"),
              std::string::npos);
}

TEST(DescribeTest, ContainsTimingAndPolicies)
{
    std::string d = presets::ddr3_1333().describe();
    EXPECT_NE(d.find("tRCD 13.75"), std::string::npos) << d;
    EXPECT_NE(d.find("scheduler frfcfs"), std::string::npos);
    EXPECT_NE(d.find("mapping RoRaBaCoCh"), std::string::npos);
    EXPECT_NE(d.find("page policy open"), std::string::npos);
}

TEST(DescribeTest, ReflectsTemperatureDerating)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.temperatureC = 95.0;
    std::string d = cfg.describe();
    EXPECT_NE(d.find("effective 3.90 us at 95 C"), std::string::npos)
        << d;
}

TEST(DescribeTest, ReflectsExtensions)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.enablePowerDown = true;
    cfg.enableSelfRefresh = true;
    cfg.perRankRefresh = true;
    cfg.schedPolicy = SchedPolicy::FrFcfsPrio;
    cfg.requestorPriorities = {0, 7};
    std::string d = cfg.describe();
    EXPECT_NE(d.find("power-down on"), std::string::npos);
    EXPECT_NE(d.find("self-refresh on"), std::string::npos);
    EXPECT_NE(d.find("per-rank refresh on"), std::string::npos);
    EXPECT_NE(d.find("qos priorities     0 7"), std::string::npos)
        << d;
}

TEST(DescribeTest, EveryPresetDescribes)
{
    for (const auto &name : presets::names()) {
        std::string d = presets::byName(name).describe();
        EXPECT_GT(d.size(), 200u) << name;
        EXPECT_NE(d.find("[organisation]"), std::string::npos);
        EXPECT_NE(d.find("[timing]"), std::string::npos);
        EXPECT_NE(d.find("[controller]"), std::string::npos);
    }
}

} // namespace
} // namespace dramctrl
