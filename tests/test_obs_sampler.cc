/**
 * @file
 * Periodic stats-sampler tests: row cadence and tick alignment, stat
 * binding by path and by group, CSV/JSONL output shape, and the
 * interaction with a mid-run statistics reset.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ckpt/ckpt.hh"
#include "dram/dram_ctrl.hh"
#include "obs/stats_sampler.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using obs::StatsSampler;
using testutil::TestRequestor;

std::vector<std::string>
splitLines(const std::string &s)
{
    std::vector<std::string> lines;
    std::istringstream is(s);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

class SamplerTest : public ::testing::Test
{
  protected:
    void
    build()
    {
        // Tear the previous system down children-first so nothing
        // outlives the Simulator it references (tests may rebuild).
        req.reset();
        ctrl.reset();
        sim.reset();
        sim = std::make_unique<Simulator>();
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "mem_ctrl", cfg,
            AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(SamplerTest, RowCadenceAndTickAlignment)
{
    build();
    std::ostringstream os;
    const Tick interval = fromNs(100);
    StatsSampler sampler(*sim, "sampler", interval, os);
    ASSERT_TRUE(sampler.addStat("mem_ctrl.readReqs"));

    for (unsigned i = 0; i < 4; ++i)
        req->inject(0, MemCmd::ReadReq, i * 64);
    sim->run(fromNs(1000));

    // Samples land at every interval multiple in (0, 1000ns].
    EXPECT_EQ(sampler.samplesTaken(), 10u);

    auto lines = splitLines(os.str());
    ASSERT_EQ(lines.size(), 11u); // header + 10 rows
    EXPECT_EQ(lines[0], "tick,mem_ctrl.readReqs");
    for (std::size_t i = 1; i < lines.size(); ++i) {
        Tick tick = std::stoull(lines[i]);
        EXPECT_EQ(tick % interval, 0u) << lines[i];
        EXPECT_EQ(tick, i * interval) << lines[i];
    }

    // By the last sample every read was accepted.
    EXPECT_NE(lines.back().find(",4"), std::string::npos)
        << lines.back();
}

TEST_F(SamplerTest, UnknownStatPathRejected)
{
    build();
    std::ostringstream os;
    StatsSampler sampler(*sim, "sampler", fromNs(100), os);
    EXPECT_FALSE(sampler.addStat("mem_ctrl.noSuchStat"));
    EXPECT_FALSE(sampler.addStat("no_such_group.readReqs"));
    EXPECT_EQ(sampler.numStats(), 0u);
}

TEST_F(SamplerTest, AddGroupStatsBindsWholeGroup)
{
    build();
    std::ostringstream os;
    StatsSampler sampler(*sim, "sampler", fromNs(100), os);
    ASSERT_TRUE(sampler.addGroupStats("mem_ctrl"));
    EXPECT_GT(sampler.numStats(), 10u);
    EXPECT_FALSE(sampler.addGroupStats("not_there"));
}

TEST_F(SamplerTest, ZeroIntervalIsFatal)
{
    build();
    std::ostringstream os;
    setThrowOnError(true);
    EXPECT_THROW(StatsSampler(*sim, "sampler", 0, os),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST_F(SamplerTest, JsonlRowsAreSelfContained)
{
    build();
    std::ostringstream os;
    StatsSampler sampler(*sim, "sampler", fromNs(200), os,
                         StatsSampler::Format::Jsonl);
    ASSERT_TRUE(sampler.addStat("mem_ctrl.readReqs"));
    ASSERT_TRUE(sampler.addStat("mem_ctrl.bytesRead"));

    req->inject(0, MemCmd::ReadReq, 0);
    sim->run(fromNs(400));

    auto lines = splitLines(os.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].find("{\"tick\": "), 0u) << lines[0];
    EXPECT_NE(lines[1].find("\"mem_ctrl.readReqs\": 1"),
              std::string::npos)
        << lines[1];
    EXPECT_NE(lines[1].find("\"mem_ctrl.bytesRead\": 64"),
              std::string::npos)
        << lines[1];
}

TEST_F(SamplerTest, SurvivesStatsResetAndShowsIt)
{
    build();
    std::ostringstream os;
    StatsSampler sampler(*sim, "sampler", fromNs(100), os);
    ASSERT_TRUE(sampler.addStat("mem_ctrl.readReqs"));

    for (unsigned i = 0; i < 4; ++i)
        req->inject(0, MemCmd::ReadReq, i * 64);
    sim->run(fromNs(500));
    std::uint64_t before = sampler.samplesTaken();
    EXPECT_EQ(before, 5u);

    // Warm-up over: reset the counters mid-run. The sampler keeps its
    // bindings and its schedule; the series shows the restart.
    sim->resetStats();
    sampler.sampleNow();
    auto lines = splitLines(os.str());
    EXPECT_EQ(lines.back(), "500000,0") << lines.back();

    req->inject(fromNs(500), MemCmd::ReadReq, 0);
    sim->run(fromNs(800));
    EXPECT_EQ(sampler.samplesTaken(), before + 1 + 3);
    lines = splitLines(os.str());
    // Post-reset counters restart from zero, so the final row counts
    // only the one post-reset read.
    EXPECT_EQ(lines.back(), "800000,1") << lines.back();
}

TEST_F(SamplerTest, SamplingTimelineSurvivesCheckpoint)
{
    // Uninterrupted reference run: 0 -> 800ns in one go.
    build();
    std::ostringstream refOs;
    auto ref = std::make_unique<StatsSampler>(*sim, "sampler",
                                              fromNs(100), refOs);
    ASSERT_TRUE(ref->addStat("mem_ctrl.readReqs"));
    for (unsigned i = 0; i < 4; ++i)
        req->inject(0, MemCmd::ReadReq, i * 64);
    sim->run(fromNs(250));
    std::string ckpt_data = ckpt::saveToString(*sim);
    std::string prefix = refOs.str();
    sim->run(fromNs(800));
    EXPECT_EQ(ref->samplesTaken(), 8u);
    ref.reset(); // before build() replaces the simulator it samples

    // Restored run: same wiring, resume from 250ns to 800ns. The
    // sampler's next-sample event, sample index and header state come
    // from the checkpoint, so the rows it appends are byte-identical
    // to the tail of the uninterrupted run.
    build();
    std::ostringstream restOs;
    StatsSampler rest(*sim, "sampler", fromNs(100), restOs);
    ASSERT_TRUE(rest.addStat("mem_ctrl.readReqs"));
    ckpt::restoreFromString(*sim, ckpt_data);
    sim->run(fromNs(800));

    EXPECT_EQ(rest.samplesTaken(), 8u);
    // No second header, and prefix + restored tail == reference.
    EXPECT_EQ(restOs.str().find("tick,"), std::string::npos);
    EXPECT_EQ(prefix + restOs.str(), refOs.str());
}

TEST_F(SamplerTest, SampleNowWritesHeaderOnce)
{
    build();
    std::ostringstream os;
    StatsSampler sampler(*sim, "sampler", fromNs(100), os);
    ASSERT_TRUE(sampler.addStat("mem_ctrl.writeReqs"));
    sampler.sampleNow();
    sampler.sampleNow();
    auto lines = splitLines(os.str());
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "tick,mem_ctrl.writeReqs");
    EXPECT_EQ(lines[1], lines[2]);
}

} // namespace
} // namespace dramctrl
