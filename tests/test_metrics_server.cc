/**
 * @file
 * Live introspection endpoint tests: Unix-socket and TCP transports,
 * HTTP and raw-netcat framing, Prometheus/JSON body selection, and the
 * MetricsPublisher bridge (liveness gauges advance with the
 * simulation, checkpoint round-trip preserves the sampling timeline).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ckpt/ckpt.hh"
#include "dram/dram_ctrl.hh"
#include "obs/metrics.hh"
#include "obs/metrics_server.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using obs::MetricsPublisher;
using obs::MetricsRegistry;
using obs::MetricsServer;
using testutil::TestRequestor;

/** Connect to the server's TCP port on loopback. */
int
tcpConnect(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
unixConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send @p request (may be empty = netcat style) and read to EOF. */
std::string
fetch(int fd, const std::string &request)
{
    if (!request.empty()) {
        EXPECT_EQ(::write(fd, request.data(), request.size()),
                  static_cast<ssize_t>(request.size()));
    }
    ::shutdown(fd, SHUT_WR);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

TEST(MetricsServer, ServesPromOverTcp)
{
    MetricsServer server("0"); // ephemeral loopback port
    server.start();
    ASSERT_TRUE(server.running());
    ASSERT_GT(server.port(), 0);
    server.publish("# TYPE dramctrl_x gauge\ndramctrl_x 1\n",
                   "{\"x\": 1}\n");

    int fd = tcpConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string resp =
        fetch(fd, "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << resp;
    EXPECT_NE(resp.find("text/plain"), std::string::npos);
    EXPECT_NE(resp.find("dramctrl_x 1"), std::string::npos);

    // The /json view serves the JSON body.
    fd = tcpConnect(server.port());
    ASSERT_GE(fd, 0);
    resp = fetch(fd, "GET /json HTTP/1.0\r\n\r\n");
    EXPECT_NE(resp.find("application/json"), std::string::npos) << resp;
    EXPECT_NE(resp.find("{\"x\": 1}"), std::string::npos);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(MetricsServer, ServesRawBodyToSilentClient)
{
    MetricsServer server("0");
    server.start();
    server.publish("dramctrl_y 2\n", "{}\n");

    // netcat with no input: raw Prometheus body, no HTTP headers.
    int fd = tcpConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string resp = fetch(fd, "");
    EXPECT_EQ(resp.find("HTTP/"), std::string::npos) << resp;
    EXPECT_NE(resp.find("dramctrl_y 2"), std::string::npos);
    server.stop();
}

TEST(MetricsServer, ServesOverUnixSocket)
{
    std::string path = "/tmp/dramctrl_test_metrics_" +
                       std::to_string(::getpid()) + ".sock";
    MetricsServer server(path);
    server.start();
    EXPECT_EQ(server.endpoint(), "unix:" + path);
    server.publish("dramctrl_z 3\n", "{}\n");

    int fd = unixConnect(path);
    ASSERT_GE(fd, 0);
    std::string resp = fetch(fd, "GET / HTTP/1.0\r\n\r\n");
    EXPECT_NE(resp.find("dramctrl_z 3"), std::string::npos) << resp;
    server.stop();
    // The socket file is cleaned up on stop.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(MetricsServer, PublishSwapsSnapshots)
{
    MetricsServer server("0");
    server.start();
    server.publish("old 1\n", "{}\n");
    server.publish("new 2\n", "{}\n");
    int fd = tcpConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string resp = fetch(fd, "GET / HTTP/1.0\r\n\r\n");
    EXPECT_EQ(resp.find("old 1"), std::string::npos);
    EXPECT_NE(resp.find("new 2"), std::string::npos);
    server.stop();
}

class PublisherTest : public ::testing::Test
{
  protected:
    void
    build()
    {
        sim = std::make_unique<Simulator>();
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "mem_ctrl", cfg,
            AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    std::string
    fetchProm(MetricsServer &server)
    {
        int fd = tcpConnect(server.port());
        EXPECT_GE(fd, 0);
        return fetch(fd, "GET /metrics HTTP/1.0\r\n\r\n");
    }

    /** Parse "dramctrl_sim_tick <v>" out of a Prometheus body. */
    double
    simTickOf(const std::string &prom)
    {
        const std::string key = "\ndramctrl_sim_tick ";
        std::size_t pos = prom.find(key);
        EXPECT_NE(pos, std::string::npos) << prom;
        if (pos == std::string::npos)
            return -1;
        return std::stod(prom.substr(pos + key.size()));
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(PublisherTest, LivenessGaugesTrackTheRun)
{
    build();
    MetricsServer server("0");
    server.start();
    bool hookRan = false;
    MetricsPublisher pub(*sim, "metrics", sim->metrics(), server,
                         fromNs(100),
                         [&](MetricsRegistry &reg) {
                             hookRan = true;
                             reg.gauge("ctrl.queued_requests")
                                 .set(static_cast<double>(
                                     ctrl->queuedRequests()));
                         });

    req->inject(0, MemCmd::ReadReq, 0);
    sim->run(fromNs(250));
    EXPECT_TRUE(hookRan);

    std::string prom = fetchProm(server);
    double t1 = simTickOf(prom);
    EXPECT_GT(t1, 0.0);
    EXPECT_NE(prom.find("dramctrl_ctrl_queued_requests"),
              std::string::npos);
    // The attached stats tree is visible through the endpoint.
    EXPECT_NE(prom.find("dramctrl_mem_ctrl_readReqs_total 1"),
              std::string::npos)
        << prom;

    // The tick gauge is monotonic as the simulation advances.
    sim->run(fromNs(600));
    double t2 = simTickOf(fetchProm(server));
    EXPECT_GT(t2, t1);
    server.stop();
}

TEST_F(PublisherTest, SamplingTimelineSurvivesCheckpoint)
{
    build();
    MetricsServer server("0");
    server.start();
    MetricsPublisher pub(*sim, "metrics", sim->metrics(), server,
                         fromNs(100));
    req->inject(0, MemCmd::ReadReq, 0);
    sim->run(fromNs(250));

    std::string path = "/tmp/dramctrl_test_pub_ckpt_" +
                       std::to_string(::getpid()) + ".ckpt";
    ckpt::saveFile(*sim, path);

    // Restore into a fresh, identically shaped system.
    auto sim2 = std::make_unique<Simulator>();
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl2(*sim2, "mem_ctrl", cfg,
                   AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req2(*sim2, "req");
    req2.port().bind(ctrl2.port());
    MetricsServer server2("0");
    server2.start();
    MetricsPublisher pub2(*sim2, "metrics", sim2->metrics(), server2,
                          fromNs(100));
    ckpt::restoreFile(*sim2, path);

    // The publish event is live on the restored timeline: running on
    // publishes a snapshot whose tick matches the restored clock.
    sim2->run(fromNs(400));
    int fd = tcpConnect(server2.port());
    ASSERT_GE(fd, 0);
    std::string prom = fetch(fd, "GET / HTTP/1.0\r\n\r\n");
    EXPECT_NE(prom.find("dramctrl_sim_tick"), std::string::npos);
    EXPECT_NE(prom.find("dramctrl_mem_ctrl_readReqs_total 1"),
              std::string::npos)
        << prom;

    server.stop();
    server2.stop();
    std::remove(path.c_str());
}

} // namespace
} // namespace dramctrl
