/**
 * @file
 * Declarative config loader tests (`ctest -R config_file`).
 *
 * The JSON schema round-trips exactly: dumping any configuration and
 * reparsing the text must reproduce a fingerprint-identical
 * configuration (timings travel as nanosecond doubles printed with
 * enough digits to survive the tick conversion). The suite fuzzes the
 * round-trip across fuzzer-drawn configurations over every registered
 * preset, locks the committed examples/ddr4.json to the ddr4_2400
 * preset byte-for-byte, and checks that malformed inputs — unknown
 * keys, type mismatches, truncated files, bogus enum values — fail
 * with errors that name the offending section and key.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "dram/dram_presets.hh"
#include "harness/config_file.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "validate/config_fuzzer.hh"

namespace dramctrl {
namespace {

using harness::configFingerprint;
using harness::dumpConfig;
using harness::loadConfigFile;
using harness::parseConfigText;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------
// Round-trip exactness.
// ---------------------------------------------------------------

TEST(ConfigFile, EveryPresetRoundTripsFingerprintIdentical)
{
    for (const std::string &name : presets::names()) {
        DRAMCtrlConfig cfg = presets::byName(name);
        std::string text = dumpConfig(cfg);

        DRAMCtrlConfig back;
        std::string err;
        ASSERT_TRUE(parseConfigText(text, back, nullptr, &err))
            << name << ": " << err;
        EXPECT_EQ(configFingerprint(cfg), configFingerprint(back))
            << name << ": dump/reparse drifted:\n"
            << cfg.describe() << "\nvs\n"
            << back.describe();
    }
}

TEST(ConfigFile, FuzzedConfigsRoundTripFingerprintIdentical)
{
    // Fuzzer-drawn configurations cover the knob space (queue depths,
    // policies, latencies, plugins, randomised organisations) far
    // beyond the preset factories.
    Random rng(2024);
    validate::FuzzerOptions fopts;
    fopts.standards = presets::names();
    fopts.withPlugins = true;
    for (int i = 0; i < 40; ++i) {
        validate::FuzzCase fc = validate::sampleCase(rng, fopts);
        std::string text = dumpConfig(fc.cfg, fc.presetName);

        DRAMCtrlConfig back;
        std::string base;
        std::string err;
        ASSERT_TRUE(parseConfigText(text, back, &base, &err))
            << "case " << i << " (" << fc.presetName
            << "): " << err;
        EXPECT_EQ(base, fc.presetName);
        EXPECT_EQ(configFingerprint(fc.cfg), configFingerprint(back))
            << "case " << i << " (" << fc.presetName
            << ") drifted:\n"
            << fc.cfg.describe() << "\nvs\n"
            << back.describe();

        // Second generation: dumping the reparsed config must emit
        // the identical text (a fixed point, not just a close orbit).
        EXPECT_EQ(text, dumpConfig(back, fc.presetName));
    }
}

TEST(ConfigFile, PresetBaseWithOverridesAppliesOnTop)
{
    DRAMCtrlConfig want = presets::byName("ddr4_2400");
    want.readBufferSize = 48;
    want.timing.tRCD = fromNs(16.0);

    const std::string text = R"({
        "preset": "ddr4_2400",
        "timing": {"tRCD": 16.0},
        "controller": {"readBufferSize": 48}
    })";
    DRAMCtrlConfig got;
    std::string base;
    std::string err;
    ASSERT_TRUE(parseConfigText(text, got, &base, &err)) << err;
    EXPECT_EQ(base, "ddr4_2400");
    EXPECT_EQ(configFingerprint(want), configFingerprint(got));
}

// ---------------------------------------------------------------
// The committed example must equal the preset it transcribes.
// ---------------------------------------------------------------

TEST(ConfigFile, ExampleDdr4MatchesPresetExactly)
{
    const std::string path = std::string(EXAMPLES_DIR) + "/ddr4.json";
    std::string base;
    DRAMCtrlConfig fromFile = loadConfigFile(path, &base);
    EXPECT_EQ(base, "ddr4_2400");

    DRAMCtrlConfig fromPreset = presets::byName("ddr4_2400");
    EXPECT_EQ(configFingerprint(fromFile),
              configFingerprint(fromPreset))
        << "examples/ddr4.json drifted from the ddr4_2400 preset:\n"
        << fromFile.describe() << "\nvs\n"
        << fromPreset.describe();

    // And the example is the dump's fixed point, so --dump-config of
    // a --config run reproduces the file byte-for-byte.
    EXPECT_EQ(readFile(path), dumpConfig(fromFile, base));
}

// ---------------------------------------------------------------
// Malformed inputs fail with errors naming section and key.
// ---------------------------------------------------------------

struct MalformedCase
{
    std::string name;
    std::string text;
    /** Substring the error message must contain. */
    std::string expect;
};

class ConfigFileMalformed
    : public ::testing::TestWithParam<MalformedCase>
{
};

TEST_P(ConfigFileMalformed, IsRejectedWithClearError)
{
    const MalformedCase &c = GetParam();
    DRAMCtrlConfig cfg;
    std::string err;
    EXPECT_FALSE(parseConfigText(c.text, cfg, nullptr, &err))
        << c.name << ": accepted malformed input";
    EXPECT_NE(err.find(c.expect), std::string::npos)
        << c.name << ": error '" << err
        << "' does not mention '" << c.expect << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ConfigFileMalformed,
    ::testing::Values(
        MalformedCase{"unknown_top_key",
                      R"({"organization": {}})", "organization"},
        MalformedCase{"unknown_timing_key",
                      R"({"timing": {"tRCDx": 14.0}})", "tRCDx"},
        MalformedCase{"unknown_org_key",
                      R"({"organisation": {"bankGroups": 4}})",
                      "bankGroups"},
        MalformedCase{"timing_type_mismatch",
                      R"({"timing": {"tRCD": "fast"}})", "tRCD"},
        MalformedCase{"org_type_mismatch",
                      R"({"organisation": {"banksPerRank": true}})",
                      "banksPerRank"},
        MalformedCase{"bool_type_mismatch",
                      R"({"controller": {"enablePowerDown": 1}})",
                      "enablePowerDown"},
        MalformedCase{"bad_enum",
                      R"({"controller": {"pagePolicy": "ajar"}})",
                      "ajar"},
        MalformedCase{"unknown_preset",
                      R"({"preset": "ddr9_9999"})", "ddr9_9999"},
        MalformedCase{"bad_format",
                      R"({"format": "dramctrl-config-v999"})",
                      "dramctrl-config-v999"},
        MalformedCase{"truncated", R"({"timing": {"tRCD": 14)", ""},
        MalformedCase{"not_an_object", R"([1, 2, 3])", "object"},
        MalformedCase{"plugin_without_kind",
                      R"({"plugins": [{"pracThreshold": 4}]})",
                      "kind"}),
    [](const ::testing::TestParamInfo<MalformedCase> &info) {
        return info.param.name;
    });

TEST(ConfigFile, MissingFileIsFatal)
{
    setThrowOnError(true);
    EXPECT_THROW(loadConfigFile("/nonexistent/nope.json"),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST(ConfigFile, SemanticallyInvalidConfigFailsCheck)
{
    // Parses fine, but tCCD_S above tBURST cannot be honoured by the
    // event model's bus serialisation — DRAMTiming::check() rejects
    // it when the loader validates.
    const std::string text = R"({
        "preset": "ddr4_2400",
        "timing": {"tCCD_S": 50.0}
    })";
    DRAMCtrlConfig cfg;
    std::string err;
    ASSERT_TRUE(parseConfigText(text, cfg, nullptr, &err)) << err;
    setThrowOnError(true);
    EXPECT_THROW(cfg.check(), std::runtime_error);
    setThrowOnError(false);
}

} // namespace
} // namespace dramctrl
