/**
 * @file
 * Unit tests for the discrete-event kernel: scheduling, ordering,
 * priorities, rescheduling, and simulate() horizon semantics.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/eventq.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace {

class ThrowOnError : public ::testing::Test
{
  protected:
    void SetUp() override { setThrowOnError(true); }
    void TearDown() override { setThrowOnError(false); }
};

using EventQueueTest = ThrowOnError;

TEST_F(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.nextTick(), kMaxTick);
    EXPECT_EQ(eq.numEventsServiced(), 0u);
}

TEST_F(EventQueueTest, ServicesEventAtScheduledTick)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper ev([&] { fired_at = eq.curTick(); }, "ev");
    eq.schedule(ev, 100);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    eq.serviceOne();
    EXPECT_EQ(fired_at, 100u);
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_FALSE(ev.scheduled());
}

TEST_F(EventQueueTest, OrdersEventsByTick)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(c, 300);
    eq.schedule(a, 100);
    eq.schedule(b, 200);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventQueueTest, SameTickOrderedByPriority)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(2); }, "low",
                             Event::kStatsPriority);
    EventFunctionWrapper high([&] { order.push_back(1); }, "high",
                              Event::kResponsePriority);
    eq.schedule(low, 50);
    eq.schedule(high, 50);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(EventQueueTest, SameTickSamePriorityFifo)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(a, 10);
    eq.schedule(b, 10);
    eq.schedule(c, 10);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventQueueTest, DescheduleRemovesEvent)
{
    EventQueue eq;
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "ev");
    eq.schedule(ev, 10);
    eq.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    eq.simulate();
    EXPECT_FALSE(fired);
}

TEST_F(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper ev([&] { fired_at = eq.curTick(); }, "ev");
    eq.schedule(ev, 10);
    eq.reschedule(ev, 500);
    eq.simulate();
    EXPECT_EQ(fired_at, 500u);
}

TEST_F(EventQueueTest, RescheduleWorksOnUnscheduledEvent)
{
    EventQueue eq;
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "ev");
    eq.reschedule(ev, 42);
    eq.simulate();
    EXPECT_TRUE(fired);
}

TEST_F(EventQueueTest, EventsScheduledFromHandlersRun)
{
    EventQueue eq;
    std::vector<Tick> fire_ticks;
    EventFunctionWrapper second(
        [&] { fire_ticks.push_back(eq.curTick()); }, "second");
    EventFunctionWrapper first(
        [&] {
            fire_ticks.push_back(eq.curTick());
            eq.schedule(second, eq.curTick() + 5);
        },
        "first");
    eq.schedule(first, 10);
    eq.simulate();
    EXPECT_EQ(fire_ticks, (std::vector<Tick>{10, 15}));
}

TEST_F(EventQueueTest, SimulateHorizonStopsBeforeLaterEvents)
{
    EventQueue eq;
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "ev");
    eq.schedule(ev, 1000);
    Tick end = eq.simulate(500);
    EXPECT_EQ(end, 500u);
    EXPECT_FALSE(fired);
    EXPECT_TRUE(ev.scheduled());
    eq.simulate(1500);
    EXPECT_TRUE(fired);
}

TEST_F(EventQueueTest, SimulateAdvancesToHorizonWhenIdle)
{
    EventQueue eq;
    Tick end = eq.simulate(12345);
    EXPECT_EQ(end, 12345u);
    EXPECT_EQ(eq.curTick(), 12345u);
}

TEST_F(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue eq;
    EventFunctionWrapper mover([] {}, "mover");
    eq.schedule(mover, 100);
    eq.simulate(200);
    EventFunctionWrapper late([] {}, "late");
    EXPECT_THROW(eq.schedule(late, 50), std::runtime_error);
}

TEST_F(EventQueueTest, DoubleSchedulePanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "ev");
    eq.schedule(ev, 10);
    EXPECT_THROW(eq.schedule(ev, 20), std::runtime_error);
    eq.deschedule(ev);
}

TEST_F(EventQueueTest, DescheduleUnscheduledPanics)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "ev");
    EXPECT_THROW(eq.deschedule(ev), std::runtime_error);
}

TEST_F(EventQueueTest, ServiceOneOnEmptyPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.serviceOne(), std::runtime_error);
}

TEST_F(EventQueueTest, CountsServicedEvents)
{
    EventQueue eq;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    eq.schedule(a, 1);
    eq.schedule(b, 2);
    eq.simulate();
    EXPECT_EQ(eq.numEventsServiced(), 2u);
}

TEST_F(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue eq;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 4096);
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&, when] {
                if (eq.curTick() < last)
                    monotonic = false;
                last = eq.curTick();
                EXPECT_EQ(eq.curTick(), when);
            },
            "stress"));
        eq.schedule(*events.back(), when);
    }
    eq.simulate();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.numEventsServiced(), 1000u);
}

TEST_F(EventQueueTest, SimulatorRunsStartupOnce)
{
    Simulator sim;
    struct Obj : SimObject
    {
        using SimObject::SimObject;
        int startups = 0;
        void startup() override { ++startups; }
    };
    Obj obj(sim, "obj");
    sim.run(100);
    sim.run(200);
    EXPECT_EQ(obj.startups, 1);
    EXPECT_EQ(sim.curTick(), 200u);
}

TEST_F(EventQueueTest, SimObjectSchedulesOnSharedQueue)
{
    Simulator sim;
    struct Obj : SimObject
    {
        using SimObject::SimObject;
        Tick fired = 0;
        EventFunctionWrapper ev{[this] { fired = curTick(); }, "ev"};
        void startup() override { schedule(ev, 77); }
    };
    Obj obj(sim, "obj");
    sim.run(100);
    EXPECT_EQ(obj.fired, 77u);
}

// The calendar agenda promises the identical (when, priority, seq)
// ordering contract as the heap; these tests drive both kinds through
// the same operation sequences and demand identical service orders.

using CalendarAgendaTest = ThrowOnError;

TEST_F(CalendarAgendaTest, BasicOrderingAcrossBuckets)
{
    EventQueue eq(AgendaKind::Calendar);
    std::vector<int> order;
    // Spread across several buckets (4096 ticks each), one far out
    // (beyond a 256-bucket revolution) and two in the same bucket.
    EventFunctionWrapper far([&] { order.push_back(4); }, "far");
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(far, 5'000'000);
    eq.schedule(c, 9000);
    eq.schedule(a, 100);
    eq.schedule(b, 150);
    EXPECT_EQ(eq.nextTick(), 100u);
    EXPECT_EQ(eq.size(), 4u);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.curTick(), 5'000'000u);
}

TEST_F(CalendarAgendaTest, SameTickPriorityThenFifo)
{
    EventQueue eq(AgendaKind::Calendar);
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(3); }, "low",
                             Event::kStatsPriority);
    EventFunctionWrapper first([&] { order.push_back(1); }, "first");
    EventFunctionWrapper second([&] { order.push_back(2); }, "second");
    eq.schedule(low, 50);
    eq.schedule(first, 50);
    eq.schedule(second, 50);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(CalendarAgendaTest, DescheduleAndReschedule)
{
    EventQueue eq(AgendaKind::Calendar);
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    eq.schedule(a, 100);
    eq.schedule(b, 200);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(eq.nextTick(), 200u);
    eq.reschedule(b, 400'000); // different bucket
    eq.schedule(a, 300);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.numEventsServiced(), 2u);
}

/** Heap and calendar service randomised agendas identically. */
TEST_F(CalendarAgendaTest, MatchesHeapOnRandomisedWorkload)
{
    // A deterministic LCG drives identical operation sequences into
    // both queues; every service step must agree on the event index.
    std::uint64_t lcg = 12345;
    auto rnd = [&lcg](std::uint64_t bound) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return (lcg >> 33) % bound;
    };

    EventQueue heap(AgendaKind::Heap);
    EventQueue cal(AgendaKind::Calendar);
    std::vector<int> heapOrder, calOrder;

    constexpr int kEvents = 64;
    std::vector<std::unique_ptr<EventFunctionWrapper>> hev, cev;
    for (int i = 0; i < kEvents; ++i) {
        hev.push_back(std::make_unique<EventFunctionWrapper>(
            [&heapOrder, i] { heapOrder.push_back(i); },
            "h" + std::to_string(i)));
        cev.push_back(std::make_unique<EventFunctionWrapper>(
            [&calOrder, i] { calOrder.push_back(i); },
            "c" + std::to_string(i)));
    }

    // Random schedule / deschedule / reschedule churn, mirrored.
    for (int step = 0; step < 2000; ++step) {
        int i = static_cast<int>(rnd(kEvents));
        Tick now = heap.curTick();
        std::uint64_t op = rnd(10);
        if (op < 6) {
            if (!hev[i]->scheduled()) {
                Tick when = now + 1 + rnd(3'000'000);
                heap.schedule(*hev[i], when);
                cal.schedule(*cev[i], when);
            }
        } else if (op < 8) {
            if (hev[i]->scheduled()) {
                heap.deschedule(*hev[i]);
                cal.deschedule(*cev[i]);
            }
        } else if (op < 9) {
            Tick when = now + 1 + rnd(500'000);
            heap.reschedule(*hev[i], when);
            cal.reschedule(*cev[i], when);
        } else if (!heap.empty()) {
            heap.serviceOne();
            cal.serviceOne();
            ASSERT_EQ(heap.curTick(), cal.curTick());
        }
        ASSERT_EQ(heap.size(), cal.size());
        ASSERT_EQ(heap.nextTick(), cal.nextTick());
    }
    heap.simulate();
    cal.simulate();
    EXPECT_EQ(heapOrder, calOrder);
    EXPECT_EQ(heap.numEventsServiced(), cal.numEventsServiced());
}

} // namespace
} // namespace dramctrl
