/**
 * @file
 * Tests for the system-assembly harness: controller factory, run
 * helpers, single-channel testbench guard rails, and the Table II
 * defaults of the multi-core builder.
 */

#include <gtest/gtest.h>

#include "cyclesim/cycle_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/linear_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;

TEST(HarnessTest, MakeControllerReturnsRequestedModel)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    auto ev = harness::makeController(
        sim, "ev", cfg, AddrRange(0, cfg.org.channelCapacity),
        CtrlModel::Event);
    auto cy = harness::makeController(
        sim, "cy", cfg, AddrRange(0, cfg.org.channelCapacity),
        CtrlModel::Cycle);
    EXPECT_NE(dynamic_cast<DRAMCtrl *>(ev.get()), nullptr);
    EXPECT_NE(dynamic_cast<cyclesim::CycleDRAMCtrl *>(cy.get()),
              nullptr);
}

TEST(HarnessTest, ToStringNames)
{
    EXPECT_STREQ(harness::toString(CtrlModel::Event), "event");
    EXPECT_STREQ(harness::toString(CtrlModel::Cycle), "cycle");
}

TEST(HarnessTest, RunUntilStopsOnPredicate)
{
    Simulator sim;
    Tick end = harness::runUntil(
        sim, [&] { return sim.curTick() >= fromUs(3); }, fromUs(1),
        fromUs(100));
    EXPECT_GE(end, fromUs(3));
    EXPECT_LT(end, fromUs(5));
}

TEST(HarnessTest, RunUntilHonoursBudget)
{
    Simulator sim;
    Tick end = harness::runUntil(
        sim, [] { return false; }, fromUs(1), fromUs(10));
    EXPECT_EQ(end, fromUs(10));
}

TEST(HarnessTest, SingleChannelRejectsSecondGenerator)
{
    setThrowOnError(true);
    harness::SingleChannelSystem tb(testutil::noRefreshConfig(),
                                    CtrlModel::Event);
    GenConfig gc;
    gc.numRequests = 1;
    tb.addGen<LinearGen>(gc);
    EXPECT_THROW(tb.addGen<LinearGen>(gc), std::runtime_error);
    setThrowOnError(false);
}

TEST(HarnessTest, EventCtrlAccessorGuardsModel)
{
    setThrowOnError(true);
    harness::SingleChannelSystem tb(testutil::noRefreshConfig(),
                                    CtrlModel::Cycle);
    EXPECT_THROW(tb.eventCtrl(), std::runtime_error);
    setThrowOnError(false);
}

TEST(HarnessTest, RunMeasuredResetsWindow)
{
    harness::SingleChannelSystem tb(testutil::noRefreshConfig(),
                                    CtrlModel::Event);
    GenConfig gc;
    gc.numRequests = 0; // unbounded
    gc.minITT = gc.maxITT = fromNs(20);
    tb.addGen<LinearGen>(gc);
    tb.runMeasured(fromUs(5), fromUs(10));
    // The measurement window excludes warm-up: utilisation reflects
    // only ~10 us of traffic and the window start is 5 us in.
    auto &ctrl = tb.eventCtrl();
    EXPECT_EQ(ctrl.statsWindowStart(), fromUs(5));
    EXPECT_GT(ctrl.busUtilisation(), 0.0);
}

TEST(HarnessTest, MultiCoreDefaultsMatchTableII)
{
    harness::MultiCoreConfig cfg;
    // Table II: 64 kB 2-way L1D, 2 ns hit, 6 MSHRs.
    EXPECT_EQ(cfg.l1.size, 64u * 1024);
    EXPECT_EQ(cfg.l1.assoc, 2u);
    EXPECT_EQ(cfg.l1.hitLatency, fromNs(2));
    EXPECT_EQ(cfg.l1.mshrs, 6u);
    // Table II: 512 kB 8-way L2, 12 ns hit, 16 MSHRs.
    EXPECT_EQ(cfg.l2.size, 512u * 1024);
    EXPECT_EQ(cfg.l2.assoc, 8u);
    EXPECT_EQ(cfg.l2.hitLatency, fromNs(12));
    EXPECT_EQ(cfg.l2.mshrs, 16u);
    // Table II core: 2 GHz, 6-wide dispatch, 8-wide commit, 40 ROB.
    EXPECT_EQ(cfg.core.clockPeriod, fromNs(0.5));
    EXPECT_EQ(cfg.core.dispatchWidth, 6u);
    EXPECT_EQ(cfg.core.commitWidth, 8u);
    EXPECT_EQ(cfg.core.robSize, 40u);
}

TEST(HarnessTest, MultiCoreValidatesShape)
{
    setThrowOnError(true);
    harness::MultiCoreConfig cfg;
    cfg.numCores = 0;
    EXPECT_THROW(
        harness::MultiCoreSystem(cfg, workloads::blackscholes()),
        std::runtime_error);
    setThrowOnError(false);
}

TEST(HarnessTest, MultiCoreClampsFootprintToSlice)
{
    // A 1-channel, 4-core system over 2 GB: canneal's 256 MB footprint
    // fits a 512 MB slice and must run without address overflow.
    harness::MultiCoreConfig cfg;
    cfg.numCores = 4;
    cfg.channels = 1;
    cfg.ctrl = testutil::noRefreshConfig();
    cfg.opsPerCore = 500;
    harness::MultiCoreSystem sys(cfg, workloads::canneal());
    sys.runToCompletion(fromUs(100000));
    EXPECT_TRUE(sys.core(3).done());
}

} // namespace
} // namespace dramctrl
