/**
 * @file
 * Trace-point tests: channel enable/disable and mask arithmetic, name
 * parsing, sink routing and fan-out, tick stamping from the active
 * simulator, sink output formats, and the tick-prefixed warn()/inform()
 * satellite.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using obs::TraceChannel;

/** Sink that records everything it receives. */
class CaptureSink : public obs::TraceSink
{
  public:
    struct Line
    {
        Tick tick;
        TraceChannel ch;
        std::string msg;
    };

    void
    write(Tick tick, TraceChannel ch, const std::string &msg) override
    {
        lines.push_back(Line{tick, ch, msg});
    }

    std::vector<Line> lines;
};

/** Every test starts and ends with trace state fully off. */
class ObsTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setChannelMask(0);
        obs::clearSinks();
    }

    void
    TearDown() override
    {
        obs::setChannelMask(0);
        obs::clearSinks();
    }
};

TEST_F(ObsTraceTest, EnableDisableSingleChannel)
{
    EXPECT_FALSE(obs::traceEnabled(TraceChannel::DRAMCtrl));
    obs::enableChannel(TraceChannel::DRAMCtrl);
    EXPECT_TRUE(obs::traceEnabled(TraceChannel::DRAMCtrl));
    EXPECT_FALSE(obs::traceEnabled(TraceChannel::XBar));

    obs::disableChannel(TraceChannel::DRAMCtrl);
    EXPECT_FALSE(obs::traceEnabled(TraceChannel::DRAMCtrl));
    EXPECT_EQ(obs::channelMask(), 0u);
}

TEST_F(ObsTraceTest, MaskCoversEveryChannel)
{
    obs::setChannelMask(obs::allChannels());
    for (unsigned i = 0;
         i < static_cast<unsigned>(TraceChannel::NumChannels); ++i)
        EXPECT_TRUE(obs::traceEnabled(static_cast<TraceChannel>(i)))
            << obs::toString(static_cast<TraceChannel>(i));
}

TEST_F(ObsTraceTest, EnableChannelsByName)
{
    EXPECT_TRUE(obs::enableChannelsByName("DRAMCtrl,Refresh"));
    EXPECT_TRUE(obs::traceEnabled(TraceChannel::DRAMCtrl));
    EXPECT_TRUE(obs::traceEnabled(TraceChannel::Refresh));
    EXPECT_FALSE(obs::traceEnabled(TraceChannel::Power));
}

TEST_F(ObsTraceTest, EnableChannelsByNameAll)
{
    EXPECT_TRUE(obs::enableChannelsByName("all"));
    EXPECT_EQ(obs::channelMask(), obs::allChannels());
}

TEST_F(ObsTraceTest, UnknownChannelNameRejectedMaskUntouched)
{
    obs::enableChannel(TraceChannel::Port);
    obs::ChannelMask before = obs::channelMask();
    EXPECT_FALSE(obs::enableChannelsByName("DRAMCtrl,NoSuchChannel"));
    EXPECT_EQ(obs::channelMask(), before);
}

TEST_F(ObsTraceTest, ChannelNamesRoundTrip)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(TraceChannel::NumChannels); ++i) {
        auto ch = static_cast<TraceChannel>(i);
        TraceChannel parsed;
        ASSERT_TRUE(obs::channelFromString(obs::toString(ch), parsed));
        EXPECT_EQ(parsed, ch);
    }
}

TEST_F(ObsTraceTest, DisabledChannelEmitsNothing)
{
    CaptureSink sink;
    obs::addSink(&sink);
    TRACE(DRAMCtrl, "should not appear %d", 1);
    EXPECT_TRUE(sink.lines.empty());
}

TEST_F(ObsTraceTest, EnabledChannelRoutesToSink)
{
    CaptureSink sink;
    obs::addSink(&sink);
    obs::enableChannel(TraceChannel::XBar);

    TRACE(XBar, "routing %u to %u", 2u, 5u);
    TRACE(DRAMCtrl, "still disabled");

    ASSERT_EQ(sink.lines.size(), 1u);
    EXPECT_EQ(sink.lines[0].ch, TraceChannel::XBar);
    EXPECT_EQ(sink.lines[0].msg, "routing 2 to 5");
}

TEST_F(ObsTraceTest, MultipleSinksAllReceive)
{
    CaptureSink a, b;
    obs::addSink(&a);
    obs::addSink(&b);
    EXPECT_EQ(obs::numSinks(), 2u);
    obs::enableChannel(TraceChannel::Power);

    TRACE(Power, "fan out");
    EXPECT_EQ(a.lines.size(), 1u);
    EXPECT_EQ(b.lines.size(), 1u);

    obs::removeSink(&a);
    TRACE(Power, "only b");
    EXPECT_EQ(a.lines.size(), 1u);
    EXPECT_EQ(b.lines.size(), 2u);
}

TEST_F(ObsTraceTest, NoSimulatorTickIsSentinel)
{
    CaptureSink sink;
    obs::addSink(&sink);
    obs::enableChannel(TraceChannel::Port);
    TRACE(Port, "outside any simulation");
    ASSERT_EQ(sink.lines.size(), 1u);
    EXPECT_EQ(sink.lines[0].tick, kMaxTick);
}

TEST_F(ObsTraceTest, TraceStampsActiveSimulatorTick)
{
    CaptureSink sink;
    obs::addSink(&sink);
    obs::enableChannel(TraceChannel::EventQ);

    Simulator sim;
    EventFunctionWrapper ev([&] { TRACE(EventQ, "from event"); },
                            "traceEvent");
    sim.eventq().schedule(ev, 12345);
    sim.run(fromUs(1));

    // One line from the kernel's own EventQ trace point plus one from
    // the event body; both stamped with the event's tick.
    ASSERT_GE(sink.lines.size(), 1u);
    bool found = false;
    for (const auto &l : sink.lines) {
        if (l.msg == "from event") {
            EXPECT_EQ(l.tick, 12345u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ObsTraceTest, InnermostSimulatorWinsTickStamp)
{
    CaptureSink sink;
    obs::addSink(&sink);
    obs::enableChannel(TraceChannel::Sampler);

    Simulator outer;
    EventFunctionWrapper oev([] {}, "outerEvent");
    outer.eventq().schedule(oev, 999);
    outer.run(fromUs(1));
    {
        Simulator inner;
        TRACE(Sampler, "inner");
        ASSERT_EQ(sink.lines.size(), 1u);
        EXPECT_EQ(sink.lines[0].tick, 0u); // inner sim at tick 0
    }
    TRACE(Sampler, "outer again");
    ASSERT_EQ(sink.lines.size(), 2u);
    EXPECT_EQ(sink.lines[1].tick, fromUs(1));
}

TEST_F(ObsTraceTest, TextSinkFormat)
{
    std::ostringstream os;
    obs::TextSink sink(os);
    sink.write(42, TraceChannel::Refresh, "pulling the banks down");
    sink.write(kMaxTick, TraceChannel::Refresh, "outside sim");
    EXPECT_EQ(os.str(), "42: Refresh: pulling the banks down\n"
                        "-: Refresh: outside sim\n");
}

TEST_F(ObsTraceTest, JsonlSinkFormatAndEscaping)
{
    std::ostringstream os;
    obs::JsonlSink sink(os);
    sink.write(7, TraceChannel::XBar, "quote \" slash \\ nl \n end");
    sink.write(kMaxTick, TraceChannel::Port, "no sim");
    std::string out = os.str();
    EXPECT_NE(out.find("{\"tick\": 7, \"channel\": \"XBar\", "
                       "\"msg\": \"quote \\\" slash \\\\ nl \\n "
                       "end\"}\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("{\"tick\": null, \"channel\": \"Port\""),
              std::string::npos)
        << out;
}

TEST_F(ObsTraceTest, WarnIsTickPrefixedWhileSimulatorActive)
{
    Simulator sim;
    EventFunctionWrapper ev([] { warn("inside the run"); }, "warnEvent");
    sim.eventq().schedule(ev, 777);

    testing::internal::CaptureStderr();
    sim.run(fromUs(1));
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("777: warn: inside the run"), std::string::npos)
        << err;
}

TEST_F(ObsTraceTest, WarnHasNoPrefixWithoutSimulator)
{
    testing::internal::CaptureStderr();
    warn("no simulation running");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: no simulation running"),
              std::string::npos)
        << err;
    EXPECT_EQ(err.find(": warn:"), std::string::npos) << err;
}

TEST_F(ObsTraceTest, InformIsTickPrefixedWhileSimulatorActive)
{
    Simulator sim;
    EventFunctionWrapper ev([] { inform("progress note"); },
                            "informEvent");
    sim.eventq().schedule(ev, 4242);

    testing::internal::CaptureStdout();
    sim.run(fromUs(1));
    std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("4242: info: progress note"), std::string::npos)
        << out;
}

} // namespace
} // namespace dramctrl
