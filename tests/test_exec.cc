/**
 * @file
 * Batch-engine unit tests: the worker pool runs everything it is
 * given, job seeds derive reproducibly, and BatchRunner delivers
 * outcomes in submission order with identical bytes at any width and
 * per-job failure isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/batch_runner.hh"
#include "exec/thread_pool.hh"
#include "sim/random.hh"

using namespace dramctrl;
using namespace dramctrl::exec;

TEST(Exec, ThreadPoolRunsAllTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.post([&count] { ++count; });
    pool.drain();
    EXPECT_EQ(count.load(), 200);

    // The pool is reusable after a drain.
    pool.post([&count] { ++count; });
    pool.drain();
    EXPECT_EQ(count.load(), 201);
}

TEST(Exec, ThreadPoolClampsToOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1u);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(Exec, DeriveSeedIsStableAndWellMixed)
{
    // Stability: the derivation is part of the repro-file contract
    // (a recorded (master, index) pair must replay forever).
    EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));

    std::vector<std::uint64_t> seen;
    for (std::uint64_t master : {1ull, 2ull, 12345ull}) {
        for (std::uint64_t idx = 0; idx < 64; ++idx)
            seen.push_back(deriveSeed(master, idx));
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()),
              seen.end())
        << "derived seeds must be distinct across masters and "
           "indices";
}

TEST(Exec, BatchRunnerDeliversInSubmissionOrder)
{
    BatchRunner runner(4);
    EXPECT_EQ(runner.jobs(), 4u);

    std::size_t expected = 0;
    std::size_t failures = runner.run<int>(
        64, [](std::size_t i) { return static_cast<int>(i) * 3; },
        [&](const JobOutcome<int> &out) {
            EXPECT_EQ(out.index, expected);
            EXPECT_TRUE(out.ok);
            EXPECT_EQ(out.value, static_cast<int>(expected) * 3);
            ++expected;
        });
    EXPECT_EQ(failures, 0u);
    EXPECT_EQ(expected, 64u);
}

namespace {

/** A seed-dependent pseudo-workload with a textual result. */
std::string
walk(std::uint64_t master, std::size_t index)
{
    Random rng(deriveSeed(master, index));
    std::uint64_t acc = 0;
    for (int step = 0; step < 50; ++step)
        acc ^= rng.next();
    return std::to_string(index) + ":" + std::to_string(acc);
}

std::string
runWalkBatch(unsigned jobs)
{
    BatchRunner runner(jobs);
    std::string out;
    runner.run<std::string>(
        40, [](std::size_t i) { return walk(7, i); },
        [&out](const JobOutcome<std::string> &o) {
            out += o.value;
            out += '\n';
        });
    return out;
}

} // namespace

TEST(Exec, BatchRunnerByteIdenticalAcrossWidths)
{
    std::string serial = runWalkBatch(1);
    EXPECT_EQ(serial, runWalkBatch(4));
    EXPECT_EQ(serial, runWalkBatch(8));
}

TEST(Exec, BatchRunnerIsolatesFailures)
{
    BatchRunner runner(4);
    std::vector<bool> ok;
    std::string error3;
    std::size_t failures = runner.run<int>(
        8,
        [](std::size_t i) {
            if (i == 3)
                throw std::runtime_error("boom at 3");
            return static_cast<int>(i);
        },
        [&](const JobOutcome<int> &out) {
            ok.push_back(out.ok);
            if (out.index == 3)
                error3 = out.error;
        });
    EXPECT_EQ(failures, 1u);
    ASSERT_EQ(ok.size(), 8u);
    for (std::size_t i = 0; i < ok.size(); ++i)
        EXPECT_EQ(ok[i], i != 3) << "job " << i;
    EXPECT_NE(error3.find("boom at 3"), std::string::npos);
}

TEST(Exec, RunCollectReturnsAllOutcomesInOrder)
{
    BatchRunner runner(3);
    auto all = runner.runCollect<std::size_t>(
        17, [](std::size_t i) { return i * i; });
    ASSERT_EQ(all.size(), 17u);
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].index, i);
        EXPECT_TRUE(all[i].ok);
        EXPECT_EQ(all[i].value, i * i);
        EXPECT_GE(all[i].hostSeconds, 0.0);
    }
}
