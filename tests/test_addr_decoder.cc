/**
 * @file
 * Unit tests for the DRAM address decoder: field layout of each
 * mapping scheme, encode/decode round trips, and the locality
 * properties the page policies rely on.
 */

#include <gtest/gtest.h>

#include "dram/addr_decoder.hh"
#include "dram/dram_presets.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace {

DRAMOrg
smallOrg()
{
    DRAMOrg org;
    org.burstLength = 8;
    org.deviceBusWidth = 8;
    org.devicesPerRank = 8; // 64-byte bursts
    org.ranksPerChannel = 2;
    org.banksPerRank = 8;
    org.rowBufferSize = 1024; // 16 bursts per row
    org.channelCapacity = 64ULL * 1024 * 1024;
    return org;
}

TEST(AddrDecoderTest, OrgDerivedQuantities)
{
    DRAMOrg org = smallOrg();
    EXPECT_EQ(org.burstSize(), 64u);
    EXPECT_EQ(org.burstsPerRow(), 16u);
    EXPECT_EQ(org.totalBanks(), 16u);
    EXPECT_EQ(org.rowsPerBank(),
              64ULL * 1024 * 1024 / (1024 * 8 * 2));
}

TEST(AddrDecoderTest, RoRaBaCoChFieldLayout)
{
    AddrDecoder dec(smallOrg(), AddrMapping::RoRaBaCoCh);

    // Address 0: everything zero.
    EXPECT_EQ(dec.decode(0), (DRAMAddr{0, 0, 0, 0}));
    // One burst up: column increments first.
    EXPECT_EQ(dec.decode(64), (DRAMAddr{0, 0, 0, 1}));
    // Past the row: bank increments.
    EXPECT_EQ(dec.decode(1024), (DRAMAddr{0, 1, 0, 0}));
    // Past all banks: rank increments.
    EXPECT_EQ(dec.decode(1024 * 8), (DRAMAddr{1, 0, 0, 0}));
    // Past all ranks: row increments.
    EXPECT_EQ(dec.decode(1024 * 16), (DRAMAddr{0, 0, 1, 0}));
}

TEST(AddrDecoderTest, RoCoRaBaChFieldLayout)
{
    AddrDecoder dec(smallOrg(), AddrMapping::RoCoRaBaCh);

    EXPECT_EQ(dec.decode(0), (DRAMAddr{0, 0, 0, 0}));
    // One burst up: bank increments first (bank parallelism for
    // sequential streams).
    EXPECT_EQ(dec.decode(64), (DRAMAddr{0, 1, 0, 0}));
    // Past all banks: rank increments.
    EXPECT_EQ(dec.decode(64 * 8), (DRAMAddr{1, 0, 0, 0}));
    // Past all ranks: column increments.
    EXPECT_EQ(dec.decode(64 * 16), (DRAMAddr{0, 0, 0, 1}));
    // Past all columns: row increments.
    EXPECT_EQ(dec.decode(64 * 16 * 16), (DRAMAddr{0, 0, 1, 0}));
}

TEST(AddrDecoderTest, RoRaBaChCoDecodesLikeRoRaBaCoCh)
{
    // Within a channel the two mappings are identical; they differ only
    // in the crossbar interleaving granularity.
    AddrDecoder a(smallOrg(), AddrMapping::RoRaBaCoCh);
    AddrDecoder b(smallOrg(), AddrMapping::RoRaBaChCo);
    for (Addr addr = 0; addr < 1 << 20; addr += 4096 + 64)
        EXPECT_EQ(a.decode(addr), b.decode(addr));
}

class AddrDecoderRoundTrip
    : public ::testing::TestWithParam<AddrMapping>
{
};

TEST_P(AddrDecoderRoundTrip, EncodeInvertsDecode)
{
    DRAMOrg org = smallOrg();
    AddrDecoder dec(org, GetParam());
    for (Addr addr = 0; addr < org.channelCapacity;
         addr += 64 * 1024 + 64) {
        Addr aligned = dec.burstAlign(addr);
        EXPECT_EQ(dec.encode(dec.decode(aligned)), aligned);
    }
}

TEST_P(AddrDecoderRoundTrip, DecodeInvertsEncode)
{
    DRAMOrg org = smallOrg();
    AddrDecoder dec(org, GetParam());
    for (unsigned rank = 0; rank < org.ranksPerChannel; ++rank) {
        for (unsigned bank = 0; bank < org.banksPerRank; bank += 3) {
            for (std::uint64_t row = 0; row < org.rowsPerBank();
                 row += 1021) {
                for (std::uint64_t col = 0; col < org.burstsPerRow();
                     col += 5) {
                    DRAMAddr da{rank, bank, row, col};
                    EXPECT_EQ(dec.decode(dec.encode(da)), da);
                }
            }
        }
    }
}

TEST_P(AddrDecoderRoundTrip, AllFieldsStayInRange)
{
    DRAMOrg org = smallOrg();
    AddrDecoder dec(org, GetParam());
    for (Addr addr = 0; addr < org.channelCapacity;
         addr += 777 * 64) {
        DRAMAddr da = dec.decode(addr);
        EXPECT_LT(da.rank, org.ranksPerChannel);
        EXPECT_LT(da.bank, org.banksPerRank);
        EXPECT_LT(da.row, org.rowsPerBank());
        EXPECT_LT(da.col, org.burstsPerRow());
    }
}

INSTANTIATE_TEST_SUITE_P(AllMappings, AddrDecoderRoundTrip,
                         ::testing::Values(AddrMapping::RoRaBaCoCh,
                                           AddrMapping::RoRaBaChCo,
                                           AddrMapping::RoCoRaBaCh),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(AddrDecoderTest, SequentialStreamLocality)
{
    DRAMOrg org = smallOrg();

    // RoRaBaCoCh: a full row of sequential bursts stays in one bank
    // (row-hit friendly).
    AddrDecoder open_map(org, AddrMapping::RoRaBaCoCh);
    for (Addr a = 64; a < org.rowBufferSize; a += 64) {
        EXPECT_EQ(open_map.decode(a).bank, open_map.decode(0).bank);
        EXPECT_EQ(open_map.decode(a).row, open_map.decode(0).row);
    }

    // RoCoRaBaCh: sequential bursts spread across all banks (bank
    // parallelism for a closed-page policy).
    AddrDecoder closed_map(org, AddrMapping::RoCoRaBaCh);
    std::vector<bool> banks_seen(org.banksPerRank, false);
    for (Addr a = 0; a < 64 * org.banksPerRank; a += 64)
        banks_seen[closed_map.decode(a).bank] = true;
    for (bool seen : banks_seen)
        EXPECT_TRUE(seen);
}

TEST(AddrDecoderTest, PresetCapacityDecodes)
{
    // Every preset's top address must decode without tripping the
    // row-range check.
    for (const auto &name : presets::names()) {
        DRAMCtrlConfig cfg = presets::byName(name);
        AddrDecoder dec(cfg.org, cfg.addrMapping);
        Addr top = cfg.org.channelCapacity - cfg.org.burstSize();
        DRAMAddr da = dec.decode(top);
        EXPECT_LT(da.row, cfg.org.rowsPerBank()) << name;
    }
}

TEST(AddrDecoderTest, OutOfRangePanics)
{
    setThrowOnError(true);
    DRAMOrg org = smallOrg();
    AddrDecoder dec(org, AddrMapping::RoRaBaCoCh);
    EXPECT_THROW(dec.decode(org.channelCapacity),
                 std::runtime_error);
    EXPECT_THROW(dec.encode(DRAMAddr{0, 99, 0, 0}),
                 std::runtime_error);
    setThrowOnError(false);
}

} // namespace
} // namespace dramctrl
