/**
 * @file
 * Tests for the binary (.dtrc) trace pipeline: format round trips
 * (including a property fuzz over random streams), structural and CRC
 * corruption detection, mmap-vs-read backend equivalence, source
 * filtering, and the headline guarantee — capturing a live run and
 * replaying the file reproduces the controller's statistics
 * byte-identically.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "dram/dram_presets.hh"
#include "harness/multichannel.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "trafficgen/trace.hh"
#include "trafficgen/trace_file.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

class DtrcFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = std::filesystem::temp_directory_path() /
                ("dramctrl_dtrc_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        path_ = base_.string() + ".dtrc";
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path_);
        std::filesystem::remove(base_.string() + ".txt");
        std::filesystem::remove(base_.string() + "2.dtrc");
    }

    /** Flip one byte at @p off in path_. */
    void
    corruptByte(std::size_t off)
    {
        std::fstream f(path_, std::ios::in | std::ios::out |
                                  std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(static_cast<std::streamoff>(off));
        char c = 0;
        f.read(&c, 1);
        c ^= 0x5a;
        f.seekp(static_cast<std::streamoff>(off));
        f.write(&c, 1);
    }

    std::filesystem::path base_;
    std::string path_;
};

/** DDR3-1333 with full write drain, so every run terminates. */
DRAMCtrlConfig
drainingConfig()
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.writeLowThreshold = 0.0;
    return cfg;
}

std::vector<TraceEntry>
randomStream(std::uint64_t seed, std::size_t n)
{
    Random rng(seed);
    std::vector<TraceEntry> entries;
    Tick tick = 0;
    for (std::size_t i = 0; i < n; ++i) {
        tick += rng.uniform(0, 10000); // zero gaps included
        TraceEntry e;
        e.tick = tick;
        e.isRead = (rng.next() & 1) != 0;
        e.addr = rng.uniform(0, kMaxTraceAddr) & ~63ULL;
        e.size = static_cast<unsigned>(1u << rng.uniform(4, 9));
        entries.push_back(e);
    }
    return entries;
}

TEST_F(DtrcFileTest, RoundTrip)
{
    auto entries = randomStream(7, 500);
    saveTraceDtrc(path_, entries);
    EXPECT_EQ(loadTraceDtrc(path_), entries);
    EXPECT_EQ(loadTraceAuto(path_), entries);
}

TEST_F(DtrcFileTest, EmptyTraceRoundTrips)
{
    saveTraceDtrc(path_, {});
    EXPECT_TRUE(loadTraceDtrc(path_).empty());
    TraceReader reader(path_);
    EXPECT_EQ(reader.info().recordCount, 0u);
    EXPECT_EQ(reader.info().numSources, 1u);
}

TEST_F(DtrcFileTest, TextBinaryRoundTripProperty)
{
    // Property fuzz: for several seeds, text -> dtrc -> entries and
    // dtrc -> entries agree with the original stream exactly.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto entries = randomStream(seed, 200);
        std::string txt = base_.string() + ".txt";
        saveTrace(txt, entries);
        auto from_text = loadTrace(txt);
        ASSERT_EQ(from_text, entries) << "seed " << seed;
        saveTraceDtrc(path_, from_text);
        ASSERT_EQ(loadTraceDtrc(path_), entries) << "seed " << seed;
    }
}

TEST_F(DtrcFileTest, FormatSniffing)
{
    saveTraceDtrc(path_, randomStream(3, 10));
    EXPECT_EQ(traceFormatOf(path_), TraceFormat::Dtrc);
    std::string txt = base_.string() + ".txt";
    saveTrace(txt, randomStream(3, 10));
    EXPECT_EQ(traceFormatOf(txt), TraceFormat::Text);
    EXPECT_EQ(traceFormatForOutput("x.txt"), TraceFormat::Text);
    EXPECT_EQ(traceFormatForOutput("x.dtrc"), TraceFormat::Dtrc);
    EXPECT_EQ(traceFormatForOutput("x"), TraceFormat::Dtrc);
}

TEST_F(DtrcFileTest, MmapAndReadBackendsIdentical)
{
    auto entries = randomStream(11, 2000);
    saveTraceDtrc(path_, entries);

    TraceReader rd(path_, true, TraceReader::Backend::Read);
    EXPECT_FALSE(rd.usingMmap());
    std::vector<TraceEntry> via_read;
    TraceEntry e;
    while (rd.next(e))
        via_read.push_back(e);
    EXPECT_EQ(via_read, entries);

    TraceReader probe(path_, false);
    if (probe.usingMmap()) {
        TraceReader rm(path_, true, TraceReader::Backend::Mmap);
        EXPECT_TRUE(rm.usingMmap());
        std::vector<TraceEntry> via_mmap;
        while (rm.next(e))
            via_mmap.push_back(e);
        EXPECT_EQ(via_mmap, via_read);

        // reset() rewinds both backends to the same stream.
        rm.reset();
        ASSERT_TRUE(rm.next(e));
        EXPECT_EQ(e, entries.front());
    }
}

TEST_F(DtrcFileTest, TruncatedFileIsFatal)
{
    saveTraceDtrc(path_, randomStream(5, 100));
    auto size = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, size - 7);
    setThrowOnError(true);
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DtrcFileTest, BadMagicIsFatal)
{
    saveTraceDtrc(path_, randomStream(5, 10));
    corruptByte(0);
    setThrowOnError(true);
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DtrcFileTest, CorruptedRecordFailsCrc)
{
    saveTraceDtrc(path_, randomStream(5, 100));
    corruptByte(kTraceHeaderSize + 3 * kTraceRecordSize + 1);
    setThrowOnError(true);
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
    // Skipping verification must still open it (structure is intact).
    EXPECT_NO_THROW(TraceReader r2(path_, /*verify_crc=*/false));
    setThrowOnError(false);
}

TEST_F(DtrcFileTest, CountMismatchIsFatal)
{
    saveTraceDtrc(path_, randomStream(5, 100));
    corruptByte(16); // header recordCount, low byte
    setThrowOnError(true);
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DtrcFileTest, WriterRejectsBackwardsTick)
{
    setThrowOnError(true);
    TraceWriter writer(path_);
    writer.append(TraceEntry{1000, true, 0x40, 64});
    EXPECT_THROW(writer.append(TraceEntry{999, true, 0x40, 64}),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DtrcFileTest, WriterRejectsOversizeFields)
{
    setThrowOnError(true);
    {
        TraceWriter writer(path_);
        EXPECT_THROW(writer.append(
                         TraceEntry{0, true, kMaxTraceAddr + 1, 64}),
                     std::runtime_error);
        EXPECT_THROW(
            writer.append(TraceEntry{0, true, 0x40,
                                     kMaxTraceReqSize + 1}),
            std::runtime_error);
        EXPECT_THROW(writer.append(TraceEntry{0, true, 0x40, 64},
                                   kMaxTraceSources),
                     std::runtime_error);
    }
    setThrowOnError(false);
}

TEST_F(DtrcFileTest, MultiSourceFiltering)
{
    // Interleave three sources; each filtered view sees only its own
    // entries, and the unfiltered view sees all of them in order.
    {
        TraceWriter writer(path_);
        for (unsigned i = 0; i < 30; ++i)
            writer.append(TraceEntry{Tick(i) * 100, true,
                                     Addr(i) * 64, 64},
                          i % 3);
        writer.finish();
    }
    TraceReader probe(path_, false);
    EXPECT_EQ(probe.info().numSources, 3u);

    DtrcTraceSource all(path_);
    std::size_t n = 0;
    TraceEntry e;
    while (all.peek(e)) {
        all.advance();
        ++n;
    }
    EXPECT_EQ(n, 30u);

    for (int s = 0; s < 3; ++s) {
        DtrcTraceSource src(path_, s);
        n = 0;
        while (src.peek(e)) {
            src.advance();
            EXPECT_EQ(e.addr % (3 * 64), static_cast<Addr>(s) * 64);
            ++n;
        }
        EXPECT_EQ(n, 10u) << "source " << s;
    }
}

TEST_F(DtrcFileTest, SourceSeekRepositions)
{
    auto entries = randomStream(13, 100);
    saveTraceDtrc(path_, entries);
    DtrcTraceSource src(path_);
    TraceEntry e;
    for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(src.peek(e));
        src.advance();
    }
    src.seek(7);
    ASSERT_TRUE(src.peek(e));
    EXPECT_EQ(e, entries[7]);
    EXPECT_EQ(src.position(), 7u);
    src.seek(99);
    ASSERT_TRUE(src.peek(e));
    EXPECT_EQ(e, entries[99]);
    src.advance();
    EXPECT_FALSE(src.peek(e));
}

TEST_F(DtrcFileTest, LiveCaptureFlagDisablesSlip)
{
    {
        TraceWriter writer(path_, kTicksPerSecond,
                           kTraceFlagLiveCapture);
        writer.append(TraceEntry{0, true, 0x40, 64});
        writer.finish();
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.info().flags & kTraceFlagLiveCapture,
              kTraceFlagLiveCapture);
    TracePlayerConfig live = makeTracePlayerConfig(path_);
    EXPECT_FALSE(live.slipOnStall);

    saveTraceDtrc(path_, randomStream(3, 5)); // plain intent schedule
    TracePlayerConfig intent = makeTracePlayerConfig(path_);
    EXPECT_TRUE(intent.slipOnStall);
}

/** Dump one stats group as its canonical JSON string. */
std::string
statsJson(const stats::Group &g)
{
    std::ostringstream os;
    g.dumpJson(os);
    return os.str();
}

TEST_F(DtrcFileTest, CaptureThenReplayReproducesCtrlStats)
{
    // A saturating random stream (short ITT) guarantees backpressure,
    // the hard case: replay must meet the same refusals and retries
    // to reproduce the queueing statistics exactly.
    DRAMCtrlConfig cfg = drainingConfig();
    std::string captured;
    {
        harness::SingleChannelSystem tb(cfg,
                                        harness::CtrlModel::Event);
        tb.enableCapture(path_);
        GenConfig gc;
        gc.numRequests = 400;
        gc.minITT = gc.maxITT = fromNs(1.0);
        gc.readPct = 70;
        gc.seed = 5;
        gc.windowSize = 1ULL << 20;
        auto &gen = tb.addGen<RandomGen>(gc);
        tb.runToCompletion([&] { return gen.done(); });
        tb.finishCapture();
        captured = statsJson(tb.ctrl().statGroup());
    }
    {
        harness::SingleChannelSystem tb(cfg,
                                        harness::CtrlModel::Event);
        auto &player =
            tb.addGen<TracePlayer>(makeTracePlayerConfig(path_));
        tb.runToCompletion([&] { return player.done(); });
        EXPECT_EQ(player.injected(), 400u);
        EXPECT_EQ(statsJson(tb.ctrl().statGroup()), captured);
    }
}

TEST_F(DtrcFileTest, MultiChannelCaptureReplaysAtAnyWidth)
{
    harness::MultiChannelConfig mcfg;
    mcfg.channels = 2;
    mcfg.ctrl = drainingConfig();

    std::vector<std::string> captured;
    {
        harness::MultiChannelSystem mc(mcfg);
        mc.enableCapture(path_);
        GenConfig gc;
        gc.numRequests = 150;
        gc.minITT = gc.maxITT = fromNs(2.0);
        gc.seed = 9;
        gc.windowSize = 1ULL << 20;
        for (unsigned i = 0; i < 2; ++i)
            mc.addGen<RandomGen>(harness::sliceGenWindow(
                gc, i, 2, mc.totalCapacity()));
        mc.runToCompletion();
        mc.finishCapture();
        for (unsigned ch = 0; ch < 2; ++ch)
            captured.push_back(statsJson(mc.ctrl(ch).statGroup()));
    }
    TraceReader probe(path_, false);
    EXPECT_EQ(probe.info().numSources, 2u);

    for (unsigned threads : {1u, 2u}) {
        harness::MultiChannelConfig rcfg = mcfg;
        rcfg.simThreads = threads;
        harness::MultiChannelSystem mc(rcfg);
        EXPECT_EQ(harness::addTracePlayers(mc, path_), 2u);
        mc.runToCompletion();
        for (unsigned ch = 0; ch < 2; ++ch)
            EXPECT_EQ(statsJson(mc.ctrl(ch).statGroup()),
                      captured[ch])
                << "channel " << ch << " at " << threads
                << " sim-threads";
    }
}

TEST_F(DtrcFileTest, StreamedCaptureMatchesBufferedText)
{
    // The .dtrc sink streams during the run; a .txt capture buffers
    // and writes at finish. Same run, same entries.
    DRAMCtrlConfig cfg = drainingConfig();
    auto run = [&](const std::string &out) {
        harness::SingleChannelSystem tb(cfg,
                                        harness::CtrlModel::Event);
        tb.enableCapture(out);
        GenConfig gc;
        gc.numRequests = 100;
        gc.seed = 21;
        gc.windowSize = 1ULL << 20;
        auto &gen = tb.addGen<LinearGen>(gc);
        tb.runToCompletion([&] { return gen.done(); });
        tb.finishCapture();
    };
    std::string txt = base_.string() + ".txt";
    run(path_);
    run(txt);
    EXPECT_EQ(loadTraceDtrc(path_), loadTrace(txt));
}

} // namespace
} // namespace dramctrl
