/**
 * @file
 * Sharded-engine and sharded-crossbar tests (`ctest -R Shard`).
 *
 * The load-bearing property is determinism: a sharded simulation must
 * produce byte-identical stats and command streams at every
 * --sim-threads setting, because the conservative engine's window
 * boundaries and barrier merge order are pure functions of the model
 * state. These tests run the same systems at 1, 2 and 8 threads and
 * compare full stats JSON dumps and merged command logs for equality.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt.hh"
#include "dram/dram_presets.hh"
#include "harness/multichannel.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "xbar/sharded_xbar.hh"

namespace dramctrl {
namespace {

// --------------------------------------------------------------------
// Engine-level ping-pong
// --------------------------------------------------------------------

/** Bounces a token to its peer with a fixed delay. */
class Pinger : public SimObject
{
  public:
    Pinger(Simulator &sim, std::string name, Tick delay)
        : SimObject(sim, std::move(name)), delay_(delay),
          inbox_(*this, "in",
                 [this](Tick t, Packet *p, std::uint64_t a) {
                     (void)t;
                     (void)p;
                     return onToken(a);
                 })
    {
    }

    void setPeer(Pinger *peer) { peer_ = peer; }
    ShardInbox &inbox() { return inbox_; }

    unsigned received = 0;
    Tick lastTick = 0;

  private:
    bool
    onToken(std::uint64_t hop)
    {
        ++received;
        lastTick = curTick();
        if (hop > 0)
            simulator().shardEngine().post(
                shardId(), peer_->shardId(), curTick() + delay_,
                peer_->inbox(), nullptr, hop - 1);
        return true;
    }

    Tick delay_;
    Pinger *peer_ = nullptr;
    ShardInbox inbox_;
};

struct PingResult
{
    Tick finalTick;
    unsigned a, b;
    std::uint64_t windows, messages;

    bool
    operator==(const PingResult &o) const
    {
        return finalTick == o.finalTick && a == o.a && b == o.b &&
               windows == o.windows && messages == o.messages;
    }
};

PingResult
runPingPong(unsigned threads, std::uint64_t hops, Tick delay)
{
    Simulator sim("pingpong");
    sim.configureShards(2, delay);
    sim.setSimThreads(threads);

    auto a = std::make_unique<Pinger>(sim, "a", delay);
    std::unique_ptr<Pinger> b;
    {
        Simulator::ShardScope scope(sim, 1);
        b = std::make_unique<Pinger>(sim, "b", delay);
    }
    EXPECT_EQ(a->shardId(), 0u);
    EXPECT_EQ(b->shardId(), 1u);
    a->setPeer(b.get());
    b->setPeer(a.get());

    sim.shardEngine().post(0, 1, delay, b->inbox(), nullptr, hops);
    Tick end = sim.run(kMaxTick);
    return PingResult{end, a->received, b->received,
                      sim.shardEngine().numWindows(),
                      sim.shardEngine().numMessages()};
}

TEST(ShardEngine, PingPongCountsAndTiming)
{
    const Tick delay = fromNs(5.0);
    PingResult r = runPingPong(1, 10, delay);
    // 11 tokens delivered: the seed plus ten bounces, alternating
    // b, a, b, ... — six to b, five to a.
    EXPECT_EQ(r.b, 6u);
    EXPECT_EQ(r.a, 5u);
    EXPECT_EQ(r.messages, 11u);
    // The last token lands at 11 * delay; the run ends at that final
    // window's boundary, one lookahead later.
    EXPECT_EQ(r.finalTick, 12 * delay);
}

TEST(ShardEngine, ThreadCountInvariant)
{
    const Tick delay = fromNs(3.0);
    PingResult one = runPingPong(1, 101, delay);
    PingResult two = runPingPong(2, 101, delay);
    PingResult eight = runPingPong(8, 101, delay);
    EXPECT_TRUE(one == two);
    EXPECT_TRUE(one == eight);
}

TEST(ShardEngine, FiniteHorizonReachesExactly)
{
    Simulator sim("horizon");
    sim.configureShards(2, fromNs(4.0));
    Tick end = sim.run(fromNs(123.0));
    EXPECT_EQ(end, fromNs(123.0));
    EXPECT_EQ(sim.shardQueue(1).curTick(), fromNs(123.0));
}

// --------------------------------------------------------------------
// Multi-channel system determinism
// --------------------------------------------------------------------

struct SysResult
{
    std::string statsJson;
    std::string cmdLog;
    Tick finalTick;
};

/** Dump every channel's command log, channel-major, tick-sorted. */
std::string
mergedCmdLog(std::vector<CmdLogger> &loggers)
{
    std::ostringstream os;
    for (unsigned ch = 0; ch < loggers.size(); ++ch) {
        auto log = loggers[ch].log();
        std::stable_sort(log.begin(), log.end(),
                         [](const CmdRecord &x, const CmdRecord &y) {
                             return x.tick < y.tick;
                         });
        for (const CmdRecord &rec : log)
            os << "ch" << ch << " " << rec.toString() << "\n";
    }
    return os.str();
}

SysResult
runSystem(unsigned channels, unsigned threads, const std::string &shape,
          std::uint64_t requests)
{
    harness::MultiChannelConfig cfg;
    cfg.channels = channels;
    cfg.ctrl = presets::byName("ddr3_1600");
    cfg.ctrl.writeLowThreshold = 0.0;
    cfg.ctrl.check();
    cfg.simThreads = threads;

    harness::MultiChannelSystem sys(cfg);
    auto &loggers = sys.attachCmdLoggers();

    GenConfig gc;
    gc.windowSize = 1ULL << 22;
    gc.minITT = fromNs(3.0);
    gc.maxITT = fromNs(9.0);
    gc.numRequests = requests;
    for (unsigned i = 0; i < channels; ++i) {
        GenConfig g = harness::sliceGenWindow(gc, i, channels,
                                              sys.totalCapacity());
        g.seed = 7 + i;
        if (shape == "linear") {
            g.readPct = 100;
            sys.addGen<LinearGen>(g);
        } else if (shape == "mixed") {
            g.readPct = 50;
            sys.addGen<RandomGen>(g);
        } else {
            g.readPct = 100;
            sys.addGen<RandomGen>(g);
        }
    }

    SysResult r;
    r.finalTick = sys.runToCompletion();
    std::ostringstream os;
    sys.sim().dumpStatsJson(os);
    r.statsJson = os.str();
    r.cmdLog = mergedCmdLog(loggers);
    return r;
}

class ShardDeterminism
    : public testing::TestWithParam<std::tuple<unsigned, const char *>>
{
};

TEST_P(ShardDeterminism, ByteIdenticalAcrossThreadCounts)
{
    unsigned channels = std::get<0>(GetParam());
    std::string shape = std::get<1>(GetParam());
    SysResult one = runSystem(channels, 1, shape, 120);
    SysResult two = runSystem(channels, 2, shape, 120);
    SysResult eight = runSystem(channels, 8, shape, 120);

    EXPECT_EQ(one.finalTick, two.finalTick);
    EXPECT_EQ(one.finalTick, eight.finalTick);
    EXPECT_EQ(one.statsJson, two.statsJson);
    EXPECT_EQ(one.statsJson, eight.statsJson);
    EXPECT_FALSE(one.cmdLog.empty());
    EXPECT_EQ(one.cmdLog, two.cmdLog);
    EXPECT_EQ(one.cmdLog, eight.cmdLog);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardDeterminism,
    testing::Values(std::make_tuple(2u, "random"),
                    std::make_tuple(4u, "mixed"),
                    std::make_tuple(4u, "linear"),
                    std::make_tuple(8u, "random")),
    [](const testing::TestParamInfo<std::tuple<unsigned, const char *>>
           &info) {
        return "ch" + std::to_string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

// --------------------------------------------------------------------
// Checkpoint under N threads, restore under M
// --------------------------------------------------------------------

/** Build the canonical 4-channel mixed system without running it. */
std::unique_ptr<harness::MultiChannelSystem>
makeCkptSystem(unsigned threads)
{
    harness::MultiChannelConfig cfg;
    cfg.channels = 4;
    cfg.ctrl = presets::byName("ddr3_1600");
    cfg.ctrl.writeLowThreshold = 0.0;
    cfg.ctrl.check();
    cfg.simThreads = threads;

    auto sys = std::make_unique<harness::MultiChannelSystem>(cfg);
    GenConfig gc;
    gc.windowSize = 1ULL << 22;
    gc.minITT = fromNs(3.0);
    gc.maxITT = fromNs(9.0);
    gc.numRequests = 400;
    gc.readPct = 50;
    for (unsigned i = 0; i < 4; ++i) {
        GenConfig g = harness::sliceGenWindow(gc, i, 4,
                                              sys->totalCapacity());
        g.seed = 21 + i;
        sys->addGen<RandomGen>(g);
    }
    return sys;
}

std::string
finalStats(harness::MultiChannelSystem &sys)
{
    std::ostringstream os;
    sys.sim().dumpStatsJson(os);
    return os.str();
}

TEST(ShardCkpt, SaveUnderNRestoreUnderMMatchesUninterrupted)
{
    // Reference: uninterrupted run (sequential).
    auto ref = makeCkptSystem(1);
    Tick ref_end = ref->runToCompletion();
    std::string want = finalStats(*ref);

    struct ThreadPair
    {
        unsigned saveThreads, restoreThreads;
    };
    for (ThreadPair tp : {ThreadPair{2, 1}, ThreadPair{1, 8},
                          ThreadPair{8, 2}}) {
        auto pre = makeCkptSystem(tp.saveThreads);
        // Stop mid-flight at an absolute poll boundary — the same
        // horizon sequence runToCompletion() uses — so the resumed
        // run sees identical window boundaries.
        harness::runUntil(
            pre->sim(), [] { return false; }, fromUs(1.0),
            fromUs(3.0));
        ASSERT_FALSE(pre->drained());
        std::string snapshot = ckpt::saveToString(pre->sim());

        auto post = makeCkptSystem(tp.restoreThreads);
        ckpt::restoreFromString(post->sim(), snapshot);
        Tick end = post->runToCompletion();

        EXPECT_EQ(end, ref_end)
            << "save@" << tp.saveThreads << " restore@"
            << tp.restoreThreads;
        EXPECT_EQ(finalStats(*post), want)
            << "save@" << tp.saveThreads << " restore@"
            << tp.restoreThreads;
    }
}

TEST(ShardCkpt, ShardCountMismatchIsFatal)
{
    auto pre = makeCkptSystem(1);
    harness::runUntil(
        pre->sim(), [] { return false; }, fromUs(1.0), fromUs(1.0));
    std::string snapshot = ckpt::saveToString(pre->sim());

    harness::MultiChannelConfig cfg;
    cfg.channels = 2;
    cfg.ctrl = presets::byName("ddr3_1600");
    cfg.ctrl.writeLowThreshold = 0.0;
    cfg.ctrl.check();
    harness::MultiChannelSystem other(cfg);
    setThrowOnError(true);
    EXPECT_THROW(ckpt::restoreFromString(other.sim(), snapshot),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST(ShardSystem, SingleChannelUnshardedStillWorks)
{
    SysResult r = runSystem(1, 1, "random", 200);
    EXPECT_GT(r.finalTick, 0u);
    EXPECT_FALSE(r.cmdLog.empty());
}

TEST(ShardSystem, RequestsCompleteAndStatsAddUp)
{
    harness::MultiChannelConfig cfg;
    cfg.channels = 4;
    cfg.ctrl = presets::byName("ddr3_1600");
    cfg.ctrl.writeLowThreshold = 0.0;
    cfg.ctrl.check();
    cfg.simThreads = 2;

    harness::MultiChannelSystem sys(cfg);
    GenConfig gc;
    gc.windowSize = 1ULL << 20;
    gc.numRequests = 150;
    gc.readPct = 100;
    for (unsigned i = 0; i < 4; ++i) {
        GenConfig g = harness::sliceGenWindow(gc, i, 4,
                                              sys.totalCapacity());
        g.seed = 11 + i;
        sys.addGen<RandomGen>(g);
    }
    sys.runToCompletion();

    for (unsigned i = 0; i < sys.numGens(); ++i) {
        EXPECT_TRUE(sys.gen(i).done());
        EXPECT_EQ(sys.gen(i).genStats().recvResponses.value(), 150.0);
    }
    EXPECT_TRUE(sys.xbar().idle());
    EXPECT_GT(sys.avgReadLatencyNs(), 0.0);
    // Random addresses interleave over all four channels; every
    // controller must have seen traffic.
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch)
        EXPECT_GT(sys.ctrl(ch).achievedBandwidthGBs(), 0.0);
}

} // namespace
} // namespace dramctrl
