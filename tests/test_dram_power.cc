/**
 * @file
 * Tests for the DRAMPower-style command-energy model, including the
 * equivalence of Micron-derived parameters with the Micron model
 * itself (the paper's Section III-E plug-in claim).
 */

#include <gtest/gtest.h>

#include "dram/dram_presets.hh"
#include "harness/testbench.hh"
#include "power/dram_power.hh"
#include "power/micron_power.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using namespace power;
using harness::CtrlModel;
using harness::SingleChannelSystem;

TEST(CommandEnergyTest, ZeroWindowYieldsZero)
{
    PowerInputs in;
    PowerBreakdown out = computeCommandEnergy(
        in, presets::ddr3_1600(), commandEnergyFor("ddr3_1600"));
    EXPECT_EQ(out.total(), 0.0);
}

TEST(CommandEnergyTest, ComponentsMatchHandCalculation)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    CommandEnergyParams e;
    e.eActPre = 2e-9;
    e.eRdBurst = 1e-9;
    e.eWrBurst = 0.5e-9;
    e.eRef = 40e-9;
    e.pPreStandby = 0.05;
    e.pActStandby = 0.06;

    PowerInputs in;
    in.window = fromUs(1);
    in.numActs = 100;
    in.readBursts = 500;
    in.writeBursts = 200;
    in.numRefreshes = 2;
    in.prechargeAllTime = fromNs(400);
    PowerBreakdown out = computeCommandEnergy(in, cfg, e);

    double w = 1e-6;
    EXPECT_NEAR(out.actPre, 2e-9 * 100 / w * 8, 1e-9);
    EXPECT_NEAR(out.read, 1e-9 * 500 / w * 8, 1e-9);
    EXPECT_NEAR(out.write, 0.5e-9 * 200 / w * 8, 1e-9);
    EXPECT_NEAR(out.refresh, 40e-9 * 2 / w * 8, 1e-9);
    double pre_frac = 400e-9 / w;
    EXPECT_NEAR(out.background,
                (0.05 * pre_frac + 0.06 * (1 - pre_frac)) * 8, 1e-9);
}

TEST(CommandEnergyTest, DerivedParamsMatchMicronModel)
{
    // With energies derived from the Micron currents, the two power
    // models must agree on any behavioural snapshot.
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    MicronPowerParams mp = ddr3Params();
    CommandEnergyParams ep = deriveFromMicron(mp, cfg.timing);

    PowerInputs in;
    in.window = fromUs(10);
    in.numActs = 1234;
    in.numRefreshes = 1;
    in.readBursts = 4000;
    in.writeBursts = 1500;
    in.prechargeAllTime = fromUs(3);
    in.powerDownTime = fromUs(1);
    // The Micron model reads utilisation fractions; make them
    // consistent with the burst counts.
    double burst_s = toSeconds(cfg.timing.tBURST);
    in.readBusFraction = 4000 * burst_s / toSeconds(in.window);
    in.writeBusFraction = 1500 * burst_s / toSeconds(in.window);

    PowerBreakdown micron = computePower(in, cfg, mp);
    PowerBreakdown cmd = computeCommandEnergy(in, cfg, ep);

    EXPECT_NEAR(cmd.actPre, micron.actPre, 1e-9);
    EXPECT_NEAR(cmd.read, micron.read, 1e-9);
    EXPECT_NEAR(cmd.write, micron.write, 1e-9);
    EXPECT_NEAR(cmd.refresh, micron.refresh, 1e-9);
    EXPECT_NEAR(cmd.background, micron.background, 1e-9);
}

TEST(CommandEnergyTest, EndToEndBothModelsAgreeOnLiveStats)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    SingleChannelSystem tb(cfg, CtrlModel::Event);
    DramGenConfig gc;
    gc.org = cfg.org;
    gc.strideBytes = 256;
    gc.numBanksTarget = 4;
    gc.readPct = 70;
    gc.numRequests = 3000;
    gc.minITT = gc.maxITT = fromNs(6);
    auto &gen = tb.addGen<DramGen>(gc);
    tb.runToCompletion([&] { return gen.done(); });

    PowerInputs in = tb.ctrl().powerInputs();
    double p_micron = computePower(in, cfg, ddr3Params()).total();
    double p_cmd =
        computeCommandEnergy(in, cfg,
                             commandEnergyFor("ddr3_1333"))
            .total();
    EXPECT_NEAR(p_cmd, p_micron, 0.02 * p_micron);
}

TEST(CommandEnergyTest, TotalEnergyScalesWithWindow)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    CommandEnergyParams ep = commandEnergyFor("ddr3_1600");
    PowerInputs in;
    in.window = fromUs(1);
    in.numActs = 10;
    in.readBursts = 100;
    double e1 = totalEnergyJoules(in, cfg, ep);
    in.window = fromUs(2); // same activity, double the time
    double e2 = totalEnergyJoules(in, cfg, ep);
    // Dynamic energy is unchanged; background doubles.
    EXPECT_GT(e2, e1);
    EXPECT_LT(e2, 2 * e1);
}

TEST(CommandEnergyTest, AllPresetsDerive)
{
    for (const auto &name : presets::names()) {
        CommandEnergyParams e = commandEnergyFor(name);
        EXPECT_GT(e.eRdBurst, 0.0) << name;
        EXPECT_GT(e.eRef, 0.0) << name;
        EXPECT_GT(e.pActStandby, e.pPreStandby) << name;
        EXPECT_GT(e.pPreStandby, e.pPowerDown) << name;
    }
}

} // namespace
} // namespace dramctrl
