/**
 * @file
 * Tests for trace recording and replay: file round trips, transparent
 * interposition, replay fidelity, and the latency-feedback gap between
 * live and replayed streams the paper warns about (Section I).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/trace.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("dramctrl_trace_" +
                 std::to_string(::getpid()) + ".txt");
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::filesystem::path path_;
};

TEST_F(TraceFileTest, SaveLoadRoundTrip)
{
    std::vector<TraceEntry> entries = {
        {1000, true, 0x40, 64},
        {2500, false, 0x1000, 32},
        {9999, true, 0xdeadbeef, 128},
    };
    saveTrace(path_.string(), entries);
    auto loaded = loadTrace(path_.string());
    EXPECT_EQ(loaded, entries);
}

TEST_F(TraceFileTest, CommentsAndBlanksIgnored)
{
    {
        std::ofstream out(path_);
        out << "# a comment line\n\n";
        out << "100 r 0x40 64 # trailing comment\n";
        out << "200 w 0x80 64\n";
    }
    auto loaded = loadTrace(path_.string());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(loaded[0].isRead);
    EXPECT_FALSE(loaded[1].isRead);
    EXPECT_EQ(loaded[0].addr, 0x40u);
}

TEST_F(TraceFileTest, MalformedLineIsFatal)
{
    setThrowOnError(true);
    {
        std::ofstream out(path_);
        out << "100 x 0x40 64\n";
    }
    EXPECT_THROW(loadTrace(path_.string()), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    setThrowOnError(true);
    EXPECT_THROW(loadTrace("/nonexistent/file.txt"),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST(TraceRecorderTest, RecordsWhileForwardingTransparently)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TraceRecorder rec(sim, "rec");
    testutil::TestRequestor req(sim, "req");

    req.port().bind(rec.cpuSidePort());
    rec.memSidePort().bind(ctrl.port());

    auto a = req.inject(0, MemCmd::ReadReq, 0x0);
    auto b = req.inject(fromNs(100), MemCmd::WriteReq, 0x40);
    sim.run(fromUs(10));

    EXPECT_TRUE(req.allResponded());
    (void)a;
    (void)b;
    ASSERT_EQ(rec.trace().size(), 2u);
    EXPECT_TRUE(rec.trace()[0].isRead);
    EXPECT_EQ(rec.trace()[0].tick, 0u);
    EXPECT_FALSE(rec.trace()[1].isRead);
    EXPECT_EQ(rec.trace()[1].addr, 0x40u);
    // Transparent: the read still saw the bare DRAM latency.
    EXPECT_EQ(req.responseTick(a), fromNs(13.75 + 13.75 + 6));
}

TEST(TracePlayerTest, ReplaysAtRecordedTicks)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    std::vector<TraceEntry> trace = {
        {0, true, 0x0, 64},
        {fromNs(100), true, 0x40, 64},
        {fromNs(200), false, 0x80, 64},
    };
    TracePlayer player(sim, "player", trace, 0);
    player.port().bind(ctrl.port());

    harness::runUntil(sim, [&] { return player.done(); });
    EXPECT_TRUE(player.done());
    EXPECT_EQ(player.injected(), 3u);
    EXPECT_EQ(player.responses(), 3u);
    EXPECT_GT(player.avgReadLatencyNs(), 0.0);
}

TEST(TracePlayerTest, TimeScaleStretchesReplay)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    std::vector<TraceEntry> trace = {{fromNs(100), true, 0x0, 64}};
    TracePlayer player(sim, "player", trace, 0, 4.0);
    player.port().bind(ctrl.port());
    harness::runUntil(sim, [&] { return player.done(); });
    // Scaled 4x: injection at 400 ns, response after the DRAM time.
    EXPECT_GE(sim.curTick(), fromNs(400));
}

TEST(TracePlayerTest, RecordThenReplayReproducesStream)
{
    // Record a live generator run, then replay the trace into an
    // identical system; the controller must see the same requests.
    auto run_live = [](std::vector<TraceEntry> &trace_out) {
        Simulator sim;
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        DRAMCtrl ctrl(sim, "ctrl", cfg,
                      AddrRange(0, cfg.org.channelCapacity));
        TraceRecorder rec(sim, "rec");
        rec.memSidePort().bind(ctrl.port());

        GenConfig gc;
        gc.numRequests = 100;
        gc.minITT = gc.maxITT = fromNs(20);
        gc.readPct = 80;
        gc.seed = 3;
        LinearGen gen(sim, "gen", gc, 0);
        gen.port().bind(rec.cpuSidePort());

        harness::runUntil(sim, [&] { return gen.done(); });
        trace_out = rec.trace();
        return ctrl.ctrlStats().readReqs.value();
    };

    std::vector<TraceEntry> trace;
    double live_reads = run_live(trace);
    ASSERT_EQ(trace.size(), 100u);

    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TracePlayer player(sim, "player", trace, 0);
    player.port().bind(ctrl.port());
    harness::runUntil(sim, [&] { return player.done(); });

    EXPECT_EQ(ctrl.ctrlStats().readReqs.value(), live_reads);
    EXPECT_EQ(player.responses(), 100u);
}

} // namespace
} // namespace dramctrl
