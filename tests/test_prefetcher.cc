/**
 * @file
 * Tests for the stride prefetcher: training, degree, per-requestor
 * streams, LRU table eviction, and end-to-end effect when attached to
 * a cache over a DRAM controller.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hh"
#include "cpu/prefetcher.hh"
#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

PrefetcherConfig
pfConfig()
{
    PrefetcherConfig cfg;
    cfg.enable = true;
    cfg.degree = 2;
    cfg.trainThreshold = 2;
    cfg.tableSize = 4;
    return cfg;
}

TEST(StridePrefetcherTest, DisabledEmitsNothing)
{
    PrefetcherConfig cfg = pfConfig();
    cfg.enable = false;
    StridePrefetcher pf(cfg, 64);
    for (Addr a = 0; a < 10 * 64; a += 64)
        EXPECT_TRUE(pf.notify(a, 0).empty());
}

TEST(StridePrefetcherTest, TrainsOnConstantStride)
{
    StridePrefetcher pf(pfConfig(), 64);
    EXPECT_TRUE(pf.notify(0, 0).empty());      // first touch
    EXPECT_TRUE(pf.notify(64, 0).empty());     // stride seen once
    auto out = pf.notify(128, 0);              // trained
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 192u);
    EXPECT_EQ(out[1], 256u);
    EXPECT_EQ(pf.trainedStreams(), 1u);
}

TEST(StridePrefetcherTest, NegativeStrideWorks)
{
    StridePrefetcher pf(pfConfig(), 64);
    pf.notify(1024, 0);
    pf.notify(960, 0);
    auto out = pf.notify(896, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 832u);
    EXPECT_EQ(out[1], 768u);
}

TEST(StridePrefetcherTest, StrideChangeRetrains)
{
    StridePrefetcher pf(pfConfig(), 64);
    pf.notify(0, 0);
    pf.notify(64, 0);
    EXPECT_FALSE(pf.notify(128, 0).empty());
    // Break the pattern: confidence resets.
    EXPECT_TRUE(pf.notify(1000 * 64, 0).empty());
    EXPECT_TRUE(pf.notify(1001 * 64, 0).empty());
    EXPECT_FALSE(pf.notify(1002 * 64, 0).empty());
}

TEST(StridePrefetcherTest, RandomStreamNeverTrains)
{
    StridePrefetcher pf(pfConfig(), 64);
    Random rng(5);
    unsigned emitted = 0;
    for (int i = 0; i < 300; ++i)
        emitted += pf.notify(rng.uniform(0, 4095) * 64, 0).empty()
                       ? 0
                       : 1;
    // Accidental equal strides are possible but must stay rare.
    EXPECT_LT(emitted, 5u);
}

TEST(StridePrefetcherTest, StreamsAreIndependentPerRequestor)
{
    StridePrefetcher pf(pfConfig(), 64);
    // Interleave two strided streams from different requestors.
    pf.notify(0, 0);
    pf.notify(1 << 20, 1);
    pf.notify(64, 0);
    pf.notify((1 << 20) + 128, 1);
    EXPECT_FALSE(pf.notify(128, 0).empty());
    EXPECT_FALSE(pf.notify((1 << 20) + 256, 1).empty());
    EXPECT_EQ(pf.trainedStreams(), 2u);
}

TEST(StridePrefetcherTest, TableEvictsLru)
{
    PrefetcherConfig cfg = pfConfig();
    cfg.tableSize = 2;
    StridePrefetcher pf(cfg, 64);
    pf.notify(0, 0);
    pf.notify(0, 1);
    pf.notify(0, 2); // evicts requestor 0's entry
    // Requestor 0 must start training from scratch: first touch, one
    // stride confirmation, then trained on the third access.
    EXPECT_TRUE(pf.notify(64, 0).empty());
    EXPECT_TRUE(pf.notify(128, 0).empty());
    EXPECT_FALSE(pf.notify(192, 0).empty());
}

class CachePrefetchTest : public ::testing::Test
{
  protected:
    void
    build(bool with_pf)
    {
        sim = std::make_unique<Simulator>();
        CacheConfig ccfg;
        ccfg.size = 8 * 1024;
        ccfg.assoc = 4;
        ccfg.mshrs = 8;
        if (with_pf) {
            ccfg.prefetcher = pfConfig();
            ccfg.prefetcher.degree = 4;
        }
        cache = std::make_unique<Cache>(*sim, "cache", ccfg);
        DRAMCtrlConfig mcfg = testutil::bareTimingConfig();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", mcfg, AddrRange(0, mcfg.org.channelCapacity));
        cache->memSidePort().bind(ctrl->port());
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(cache->cpuSidePort());
    }

    /** Scripted sequential read sweep; returns total latency. */
    Tick
    sweep(unsigned blocks, Tick spacing)
    {
        Tick total = 0;
        std::vector<std::uint64_t> ids;
        for (unsigned i = 0; i < blocks; ++i)
            ids.push_back(req->inject(i * spacing, MemCmd::ReadReq,
                                      static_cast<Addr>(i) * 64, 8));
        sim->run(blocks * spacing + fromUs(10));
        for (unsigned i = 0; i < blocks; ++i)
            total += req->responseTick(ids[i]) - i * spacing;
        return total;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Cache> cache;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(CachePrefetchTest, SequentialSweepBenefits)
{
    build(false);
    Tick base = sweep(64, fromNs(100));
    double base_misses = cache->cacheStats().misses.value();

    build(true);
    Tick with_pf = sweep(64, fromNs(100));

    const auto &s = cache->cacheStats();
    EXPECT_GT(s.prefetchesIssued.value(), 10.0);
    EXPECT_GT(s.prefetchHits.value() + s.prefetchLate.value(), 10.0);
    // Fewer demand misses and lower total latency.
    EXPECT_LT(s.misses.value(), base_misses);
    EXPECT_LT(with_pf, base);
}

TEST_F(CachePrefetchTest, PrefetchKeepsDemandMshrFree)
{
    build(true);
    // A long strided stream must never block on its own prefetches.
    Tick t = 0;
    for (unsigned i = 0; i < 200; ++i) {
        req->inject(t, MemCmd::ReadReq, static_cast<Addr>(i) * 64, 8);
        t += fromNs(20);
    }
    sim->run(t + fromUs(20));
    EXPECT_TRUE(req->allResponded());
}

TEST_F(CachePrefetchTest, NoPathologyOnRandomTraffic)
{
    build(true);
    Random rng(11);
    Tick t = 0;
    for (unsigned i = 0; i < 300; ++i) {
        req->inject(t, MemCmd::ReadReq,
                    rng.uniform(0, 1 << 14) * 64, 8);
        t += fromNs(50);
    }
    sim->run(t + fromUs(20));
    EXPECT_TRUE(req->allResponded());
    // Random traffic trains (almost) nothing.
    EXPECT_LT(cache->cacheStats().prefetchesIssued.value(), 20.0);
}

} // namespace
} // namespace dramctrl
