/**
 * @file
 * Property tests: address decomposition must never alias.
 *
 * For every address mapping and a spread of channel organisations,
 * AddrDecoder::decode must be injective over a channel span with
 * encode as its exact inverse, every decoded coordinate must be in
 * range, and the crossbar's interleaved ranges must partition the
 * global window so each address routes to exactly one channel and
 * the dense (channel-stripped) addresses tile the channel span.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dram/addr_decoder.hh"
#include "dram/dram_config.hh"
#include "mem/addr_range.hh"
#include "sim/random.hh"
#include "xbar/xbar.hh"

namespace dramctrl {
namespace {

const AddrMapping kMappings[] = {
    AddrMapping::RoRaBaChCo,
    AddrMapping::RoRaBaCoCh,
    AddrMapping::RoCoRaBaCh,
};

std::vector<DRAMOrg>
orgVariants()
{
    std::vector<DRAMOrg> out;

    DRAMOrg base; // DDR3-like: 64 B burst, 1 KiB row, 8 banks
    base.channelCapacity = 1ULL << 22; // keep spans exhaustive
    out.push_back(base);

    DRAMOrg multiRank = base;
    multiRank.ranksPerChannel = 4;
    out.push_back(multiRank);

    DRAMOrg wide = base; // WideIO-like: 32 B burst, 4 banks
    wide.burstLength = 4;
    wide.deviceBusWidth = 64;
    wide.devicesPerRank = 1;
    wide.banksPerRank = 4;
    wide.rowBufferSize = 2048;
    out.push_back(wide);

    DRAMOrg vault = base; // HMC-vault-like: 2 banks, small rows
    vault.burstLength = 4;
    vault.deviceBusWidth = 64;
    vault.devicesPerRank = 1;
    vault.banksPerRank = 2;
    vault.rowBufferSize = 256;
    vault.channelCapacity = 1ULL << 21;
    out.push_back(vault);

    DRAMOrg grouped = base; // DDR4-like: 16 banks in 4 groups
    grouped.banksPerRank = 16;
    grouped.bankGroupsPerRank = 4;
    grouped.rowBufferSize = 8192;
    out.push_back(grouped);

    DRAMOrg pseudo = base; // HBM-like: one pseudochannel of two
    pseudo.burstLength = 4;
    pseudo.deviceBusWidth = 64;
    pseudo.devicesPerRank = 1;
    pseudo.banksPerRank = 16;
    pseudo.bankGroupsPerRank = 4;
    pseudo.pseudoChannels = 2;
    pseudo.rowBufferSize = 1024;
    pseudo.channelCapacity = 1ULL << 21;
    out.push_back(pseudo);

    return out;
}

/** Pack a coordinate into one comparable/index-able integer. */
std::uint64_t
key(const DRAMOrg &org, const DRAMAddr &da)
{
    std::uint64_t k = da.rank;
    k = k * org.banksPerRank + da.bank;
    k = k * org.rowsPerBank() + da.row;
    k = k * org.burstsPerRow() + da.col;
    return k;
}

TEST(AddrBijection, DecodeIsInjectiveAndEncodeInverts)
{
    for (const DRAMOrg &org : orgVariants()) {
        const std::uint64_t burst = org.burstSize();
        const std::uint64_t bursts = org.channelCapacity / burst;
        for (AddrMapping m : kMappings) {
            AddrDecoder dec(org, m);
            // One slot per possible coordinate: decode must hit each
            // at most once (and, over a full span, exactly once).
            std::vector<bool> seen(bursts, false);
            for (std::uint64_t i = 0; i < bursts; ++i) {
                Addr dense = i * burst;
                DRAMAddr da = dec.decode(dense);

                ASSERT_LT(da.rank, org.ranksPerChannel);
                ASSERT_LT(da.bank, org.banksPerRank);
                ASSERT_LT(da.row, org.rowsPerBank());
                ASSERT_LT(da.col, org.burstsPerRow());

                std::uint64_t k = key(org, da);
                ASSERT_FALSE(seen[k])
                    << "mapping " << toString(m) << " aliases burst "
                    << i << " onto an earlier coordinate";
                seen[k] = true;

                ASSERT_EQ(dec.encode(da), dense)
                    << "mapping " << toString(m)
                    << " encode does not invert decode at " << dense;
            }
            // seen[] has exactly `bursts` slots, all now set: decode
            // over the span is a bijection onto the coordinate space.
        }
    }
}

TEST(AddrBijection, DecodeIgnoresSubBurstBits)
{
    DRAMOrg org;
    org.channelCapacity = 1ULL << 22;
    for (AddrMapping m : kMappings) {
        AddrDecoder dec(org, m);
        Random rng(7);
        for (int i = 0; i < 2000; ++i) {
            Addr a = rng.uniform(0, org.channelCapacity - 1);
            EXPECT_EQ(key(org, dec.decode(a)),
                      key(org, dec.decode(dec.burstAlign(a))));
        }
    }
}

TEST(AddrBijection, BankGroupDerivationCoversAllGroups)
{
    // The group overlay never changes the decode itself; it must
    // still tile the bank space evenly (group-minor numbering) and a
    // full address span must touch every group of every rank.
    for (const DRAMOrg &org : orgVariants()) {
        if (!org.hasBankGroups())
            continue;
        ASSERT_EQ(org.banksPerGroup() * org.bankGroupsPerRank,
                  org.banksPerRank);
        std::vector<unsigned> perGroup(org.bankGroupsPerRank, 0);
        for (unsigned b = 0; b < org.banksPerRank; ++b) {
            unsigned g = org.bankGroup(b);
            ASSERT_LT(g, org.bankGroupsPerRank);
            ++perGroup[g];
        }
        for (unsigned g = 0; g < org.bankGroupsPerRank; ++g)
            EXPECT_EQ(perGroup[g], org.banksPerGroup());
        // Group-minor: consecutive banks land in consecutive groups,
        // so low-order bank interleave alternates groups.
        EXPECT_NE(org.bankGroup(0), org.bankGroup(1));

        for (AddrMapping m : kMappings) {
            AddrDecoder dec(org, m);
            std::vector<bool> hit(org.bankGroupsPerRank, false);
            const std::uint64_t burst = org.burstSize();
            for (std::uint64_t a = 0; a < org.channelCapacity;
                 a += burst)
                hit[org.bankGroup(dec.decode(a).bank)] = true;
            for (unsigned g = 0; g < org.bankGroupsPerRank; ++g)
                EXPECT_TRUE(hit[g])
                    << toString(m) << ": group " << g
                    << " unreachable";
        }
    }
}

TEST(AddrBijection, PseudoChannelSplitPartitionsThePhysicalChannel)
{
    // The harness splits a physical channel into org.pseudoChannels
    // controller instances via the interleaved ranges; the split must
    // partition the physical span with each pseudochannel's dense
    // addresses tiling its own capacity.
    DRAMOrg org;
    org.burstLength = 4;
    org.deviceBusWidth = 64;
    org.devicesPerRank = 1;
    org.banksPerRank = 16;
    org.bankGroupsPerRank = 4;
    org.pseudoChannels = 2;
    org.rowBufferSize = 1024;
    org.channelCapacity = 1ULL << 20;

    const std::uint64_t physical =
        org.channelCapacity * org.pseudoChannels;
    auto ranges = interleavedRanges(0, physical, org.burstSize(),
                                    org.pseudoChannels);
    ASSERT_EQ(ranges.size(), org.pseudoChannels);

    std::vector<std::vector<bool>> dense(
        org.pseudoChannels,
        std::vector<bool>(org.channelCapacity / org.burstSize(),
                          false));
    for (Addr a = 0; a < physical; a += org.burstSize()) {
        unsigned owner = 0, owners = 0;
        for (unsigned pc = 0; pc < org.pseudoChannels; ++pc) {
            if (ranges[pc].contains(a)) {
                owner = pc;
                ++owners;
            }
        }
        ASSERT_EQ(owners, 1u) << "address " << a;
        Addr d = ranges[owner].removeIntlvBits(a);
        ASSERT_LT(d, org.channelCapacity);
        ASSERT_FALSE(dense[owner][d / org.burstSize()]);
        dense[owner][d / org.burstSize()] = true;
    }
}

TEST(AddrBijection, InterleavedRangesPartitionTheWindow)
{
    const std::uint64_t total = 1ULL << 20;
    const std::uint64_t granularities[] = {64, 1024}; // burst, row
    const unsigned channelCounts[] = {1, 2, 4};

    for (std::uint64_t gran : granularities) {
        for (unsigned nch : channelCounts) {
            auto ranges = interleavedRanges(0, total, gran, nch);
            ASSERT_EQ(ranges.size(), nch);

            // Dense per-channel images must each tile the channel
            // span [0, total/nch) exactly once.
            std::vector<std::vector<bool>> dense(
                nch, std::vector<bool>(total / nch / gran, false));

            for (Addr a = 0; a < total; a += gran) {
                unsigned owner = 0, owners = 0;
                for (unsigned c = 0; c < nch; ++c) {
                    if (ranges[c].contains(a)) {
                        owner = c;
                        ++owners;
                    }
                }
                ASSERT_EQ(owners, 1u)
                    << a << " owned by " << owners << " channels "
                    << "(gran " << gran << ", " << nch << " ch)";

                Addr d = ranges[owner].removeIntlvBits(a);
                ASSERT_LT(d, total / nch);
                ASSERT_EQ(d % gran, 0u);
                ASSERT_FALSE(dense[owner][d / gran])
                    << "channel " << owner << " dense address " << d
                    << " hit twice";
                dense[owner][d / gran] = true;
            }
            // Every slot visited exactly once => partition + bijection
            // between the window and the union of channel spans.
        }
    }
}

} // namespace
} // namespace dramctrl
