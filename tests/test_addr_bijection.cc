/**
 * @file
 * Property tests: address decomposition must never alias.
 *
 * For every address mapping and a spread of channel organisations,
 * AddrDecoder::decode must be injective over a channel span with
 * encode as its exact inverse, every decoded coordinate must be in
 * range, and the crossbar's interleaved ranges must partition the
 * global window so each address routes to exactly one channel and
 * the dense (channel-stripped) addresses tile the channel span.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dram/addr_decoder.hh"
#include "dram/dram_config.hh"
#include "mem/addr_range.hh"
#include "sim/random.hh"
#include "xbar/xbar.hh"

namespace dramctrl {
namespace {

const AddrMapping kMappings[] = {
    AddrMapping::RoRaBaChCo,
    AddrMapping::RoRaBaCoCh,
    AddrMapping::RoCoRaBaCh,
};

std::vector<DRAMOrg>
orgVariants()
{
    std::vector<DRAMOrg> out;

    DRAMOrg base; // DDR3-like: 64 B burst, 1 KiB row, 8 banks
    base.channelCapacity = 1ULL << 22; // keep spans exhaustive
    out.push_back(base);

    DRAMOrg multiRank = base;
    multiRank.ranksPerChannel = 4;
    out.push_back(multiRank);

    DRAMOrg wide = base; // WideIO-like: 32 B burst, 4 banks
    wide.burstLength = 4;
    wide.deviceBusWidth = 64;
    wide.devicesPerRank = 1;
    wide.banksPerRank = 4;
    wide.rowBufferSize = 2048;
    out.push_back(wide);

    DRAMOrg vault = base; // HMC-vault-like: 2 banks, small rows
    vault.burstLength = 4;
    vault.deviceBusWidth = 64;
    vault.devicesPerRank = 1;
    vault.banksPerRank = 2;
    vault.rowBufferSize = 256;
    vault.channelCapacity = 1ULL << 21;
    out.push_back(vault);

    return out;
}

/** Pack a coordinate into one comparable/index-able integer. */
std::uint64_t
key(const DRAMOrg &org, const DRAMAddr &da)
{
    std::uint64_t k = da.rank;
    k = k * org.banksPerRank + da.bank;
    k = k * org.rowsPerBank() + da.row;
    k = k * org.burstsPerRow() + da.col;
    return k;
}

TEST(AddrBijection, DecodeIsInjectiveAndEncodeInverts)
{
    for (const DRAMOrg &org : orgVariants()) {
        const std::uint64_t burst = org.burstSize();
        const std::uint64_t bursts = org.channelCapacity / burst;
        for (AddrMapping m : kMappings) {
            AddrDecoder dec(org, m);
            // One slot per possible coordinate: decode must hit each
            // at most once (and, over a full span, exactly once).
            std::vector<bool> seen(bursts, false);
            for (std::uint64_t i = 0; i < bursts; ++i) {
                Addr dense = i * burst;
                DRAMAddr da = dec.decode(dense);

                ASSERT_LT(da.rank, org.ranksPerChannel);
                ASSERT_LT(da.bank, org.banksPerRank);
                ASSERT_LT(da.row, org.rowsPerBank());
                ASSERT_LT(da.col, org.burstsPerRow());

                std::uint64_t k = key(org, da);
                ASSERT_FALSE(seen[k])
                    << "mapping " << toString(m) << " aliases burst "
                    << i << " onto an earlier coordinate";
                seen[k] = true;

                ASSERT_EQ(dec.encode(da), dense)
                    << "mapping " << toString(m)
                    << " encode does not invert decode at " << dense;
            }
            // seen[] has exactly `bursts` slots, all now set: decode
            // over the span is a bijection onto the coordinate space.
        }
    }
}

TEST(AddrBijection, DecodeIgnoresSubBurstBits)
{
    DRAMOrg org;
    org.channelCapacity = 1ULL << 22;
    for (AddrMapping m : kMappings) {
        AddrDecoder dec(org, m);
        Random rng(7);
        for (int i = 0; i < 2000; ++i) {
            Addr a = rng.uniform(0, org.channelCapacity - 1);
            EXPECT_EQ(key(org, dec.decode(a)),
                      key(org, dec.decode(dec.burstAlign(a))));
        }
    }
}

TEST(AddrBijection, InterleavedRangesPartitionTheWindow)
{
    const std::uint64_t total = 1ULL << 20;
    const std::uint64_t granularities[] = {64, 1024}; // burst, row
    const unsigned channelCounts[] = {1, 2, 4};

    for (std::uint64_t gran : granularities) {
        for (unsigned nch : channelCounts) {
            auto ranges = interleavedRanges(0, total, gran, nch);
            ASSERT_EQ(ranges.size(), nch);

            // Dense per-channel images must each tile the channel
            // span [0, total/nch) exactly once.
            std::vector<std::vector<bool>> dense(
                nch, std::vector<bool>(total / nch / gran, false));

            for (Addr a = 0; a < total; a += gran) {
                unsigned owner = 0, owners = 0;
                for (unsigned c = 0; c < nch; ++c) {
                    if (ranges[c].contains(a)) {
                        owner = c;
                        ++owners;
                    }
                }
                ASSERT_EQ(owners, 1u)
                    << a << " owned by " << owners << " channels "
                    << "(gran " << gran << ", " << nch << " ch)";

                Addr d = ranges[owner].removeIntlvBits(a);
                ASSERT_LT(d, total / nch);
                ASSERT_EQ(d % gran, 0u);
                ASSERT_FALSE(dense[owner][d / gran])
                    << "channel " << owner << " dense address " << d
                    << " hit twice";
                dense[owner][d / gran] = true;
            }
            // Every slot visited exactly once => partition + bijection
            // between the window and the union of channel spans.
        }
    }
}

} // namespace
} // namespace dramctrl
