/**
 * @file
 * Tests for the JSON statistics export: structural validity, value
 * fidelity for each stat type, and the full-tree dump from a live
 * simulation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/dram_ctrl.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using namespace stats;

/** Minimal structural JSON validation: balanced braces/brackets and
 *  balanced quotes outside of strings. */
bool
structurallyValidJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
          case '[': ++depth; break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            break;
          default: break;
        }
    }
    return depth == 0 && !in_string;
}

TEST(StatsJsonTest, ScalarAndFormula)
{
    Group g("g");
    Scalar s(&g, "count", "");
    s += 42;
    Formula f(&g, "double_count", "", [&] { return 2 * s.value(); });

    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"count\": 42"), std::string::npos) << out;
    EXPECT_NE(out.find("\"double_count\": 84"), std::string::npos)
        << out;
}

TEST(StatsJsonTest, AverageAndVector)
{
    Group g("g");
    Average a(&g, "avg", "");
    a.sample(10);
    a.sample(20);
    Vector v(&g, "vec", "", 3);
    v[1] = 7;

    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"avg\": {\"mean\": 15, \"samples\": 2}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"vec\": [0, 7, 0]"), std::string::npos)
        << out;
}

TEST(StatsJsonTest, HistogramFields)
{
    Group g("g");
    Histogram h(&g, "hist", "", 8);
    h.sample(3);
    h.sample(5);

    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"samples\": 2"), std::string::npos) << out;
    EXPECT_NE(out.find("\"buckets\": ["), std::string::npos) << out;
}

TEST(StatsJsonTest, NestedGroups)
{
    Group root("system");
    Group child("mem", &root);
    Scalar s(&child, "reads", "");
    s += 1;

    std::ostringstream os;
    root.dumpJson(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"mem\": {\"reads\": 1}"), std::string::npos)
        << out;
}

TEST(StatsJsonTest, FullSimulationTreeIsValid)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    testutil::TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    for (unsigned i = 0; i < 20; ++i)
        req.inject(0, MemCmd::ReadReq, static_cast<Addr>(i) * 64);
    sim.run(fromUs(10));

    std::ostringstream os;
    sim.dumpStatsJson(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out));
    EXPECT_NE(out.find("\"ctrl\""), std::string::npos);
    EXPECT_NE(out.find("\"readBursts\": 20"), std::string::npos)
        << out.substr(0, 500);
}

} // namespace
} // namespace dramctrl
