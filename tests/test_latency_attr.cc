/**
 * @file
 * Latency attribution tests: the per-stage decomposition carried by
 * every response must sum *exactly* to the measured end-to-end
 * latency — in the event model, in the cycle model, through the
 * crossbar, and over a golden-corpus style randomised run (where the
 * generator-side DC_ASSERTs audit every single response).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cyclesim/cycle_ctrl.hh"
#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/simulator.hh"
#include "stats/latency_attr.hh"
#include "trafficgen/random_gen.hh"
#include "xbar/xbar.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using stats::LatStage;
using stats::LatencySpan;
using testutil::TestRequestor;

/** Sum the six stages by hand — the identity the spans must satisfy. */
Tick
stageSum(const LatencySpan &s)
{
    Tick sum = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(LatStage::NumStages);
         ++i)
        sum += s.stage(static_cast<LatStage>(i));
    return sum;
}

void
checkResponses(const TestRequestor &req)
{
    ASSERT_FALSE(req.responses().empty());
    for (const TestRequestor::Response &r : req.responses()) {
        ASSERT_TRUE(r.span.valid)
            << "response without span at tick " << r.tick;
        EXPECT_TRUE(r.span.consistent());
        // The decomposition sums to the span total...
        EXPECT_EQ(stageSum(r.span), r.span.total());
        // ...and, with the requestor wired straight to the controller
        // (no interconnect, no retries), the span total IS the
        // measured end-to-end latency — exactly, for every request.
        EXPECT_EQ(r.span.total(), r.tick - r.injected)
            << "pkt " << r.pktId << " injected at " << r.injected;
    }
}

TEST(LatencyAttr, EventModelDecompositionIsExact)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    // Same row (hits), different rows in one bank (conflicts) and
    // different banks — exercising queueing, bankTiming and bus
    // contention stages.
    for (unsigned i = 0; i < 4; ++i)
        req.inject(0, MemCmd::ReadReq, i * 64);
    req.inject(0, MemCmd::ReadReq, 1 << 16);
    req.inject(0, MemCmd::ReadReq, 1 << 20);
    sim.run(fromUs(2.0));

    ASSERT_TRUE(req.allResponded());
    checkResponses(req);

    // Every serviced read landed in the stage histograms.
    EXPECT_EQ(ctrl.ctrlStats().lat.totalHist().count(), 6u);
}

TEST(LatencyAttr, EventModelWritesAndForwardsAreImmediate)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    req.inject(0, MemCmd::WriteReq, 0);
    // Read of the freshly written line: forwarded from the write
    // queue, never touching the DRAM.
    req.inject(fromNs(1.0), MemCmd::ReadReq, 0);
    sim.run(fromUs(2.0));

    ASSERT_TRUE(req.allResponded());
    for (const TestRequestor::Response &r : req.responses()) {
        ASSERT_TRUE(r.span.valid);
        EXPECT_TRUE(r.span.consistent());
        // Immediate spans: the only latency is the static pipeline.
        EXPECT_EQ(r.span.done, r.span.enqueue);
        EXPECT_EQ(r.span.total(), r.span.staticLat);
        EXPECT_EQ(r.span.total(), r.tick - r.injected);
    }
    // Neither request was serviced by the DRAM read path.
    EXPECT_EQ(ctrl.ctrlStats().lat.totalHist().count(), 0u);
}

TEST(LatencyAttr, CycleModelDecompositionIsExact)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    cyclesim::CycleDRAMCtrl ctrl(sim, "cycle_ctrl", cfg,
                                 AddrRange(0,
                                           cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    for (unsigned i = 0; i < 4; ++i)
        req.inject(0, MemCmd::ReadReq, i * 64);
    req.inject(0, MemCmd::ReadReq, 1 << 16);
    req.inject(0, MemCmd::ReadReq, 1 << 20);
    sim.run(fromUs(2.0));

    ASSERT_TRUE(req.allResponded());
    checkResponses(req);
    EXPECT_EQ(ctrl.ctrlStats().lat.totalHist().count(), 6u);

    // The cycle model has no separate scheduler-stall stage: the bank
    // becomes "ready" at issue (the wait shows up as bankTiming).
    for (const TestRequestor::Response &r : req.responses())
        EXPECT_EQ(r.span.stage(LatStage::SchedStall), 0u);
}

/**
 * Golden-corpus style randomised runs: the generator's
 * recvTimingResp DC_ASSERTs span consistency and inner-vs-measured
 * ordering for EVERY response, so simply completing the run audits
 * the full corpus. On top, the stage histograms must cover every
 * DRAM-serviced read and the requestor-side residual every valid
 * span.
 */
class LatencyAttrCorpus
    : public ::testing::TestWithParam<harness::CtrlModel>
{};

TEST_P(LatencyAttrCorpus, RandomisedRunAuditsEveryResponse)
{
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    harness::SingleChannelSystem sys(cfg, GetParam());

    GenConfig gcfg;
    gcfg.windowSize = 1 << 22;
    gcfg.readPct = 70;
    gcfg.numRequests = 2000;
    gcfg.minITT = fromNs(3.0);
    gcfg.maxITT = fromNs(12.0);
    gcfg.seed = 7;
    RandomGen &gen = sys.addGen<RandomGen>(gcfg);

    sys.runToCompletion([&gen] { return gen.done(); });

    const auto &gs = gen.genStats();
    EXPECT_EQ(static_cast<std::uint64_t>(gs.recvResponses.value()),
              gcfg.numRequests);
    // Every read response carried a valid span, so the residual
    // histogram sampled exactly the read count.
    EXPECT_EQ(gs.xbarLatencyHist.count(),
              static_cast<std::uint64_t>(gs.sentReads.value()));
}

INSTANTIATE_TEST_SUITE_P(Models, LatencyAttrCorpus,
                         ::testing::Values(harness::CtrlModel::Event,
                                           harness::CtrlModel::Cycle));

TEST(LatencyAttr, SpansSurviveTheCrossbar)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();

    Crossbar xbar(sim, "xbar", XBarConfig{});
    std::vector<AddrRange> ranges = interleavedRanges(
        0, cfg.org.channelCapacity * 2, 64, 2);
    std::vector<std::unique_ptr<DRAMCtrl>> ctrls;
    for (unsigned ch = 0; ch < 2; ++ch) {
        auto ctrl = std::make_unique<DRAMCtrl>(
            sim, "ctrl" + std::to_string(ch), cfg, ranges[ch]);
        unsigned idx = xbar.addMemSidePort(ranges[ch]);
        xbar.memSidePort(idx).bind(ctrl->port());
        ctrls.push_back(std::move(ctrl));
    }

    GenConfig gcfg;
    gcfg.windowSize = 1 << 22;
    gcfg.readPct = 100;
    gcfg.numRequests = 500;
    gcfg.minITT = fromNs(3.0);
    gcfg.maxITT = fromNs(6.0);
    RandomGen gen(sim, "gen", gcfg, 0);
    unsigned cpu = xbar.addCpuSidePort();
    gen.port().bind(xbar.cpuSidePort(cpu));

    harness::runUntil(sim, [&] { return gen.done(); });
    ASSERT_TRUE(gen.done());

    // Through the interconnect the measured latency strictly exceeds
    // the controller span: the residual histogram saw every read and
    // its minimum is at least the crossbar's two-way pipeline
    // latency.
    const auto &gs = gen.genStats();
    EXPECT_EQ(gs.xbarLatencyHist.count(), 500u);
    XBarConfig xcfg;
    EXPECT_GE(gs.xbarLatencyHist.minSample(),
              toNs(xcfg.frontendLatency + xcfg.responseLatency));
}

TEST(LatencyAttr, StageStatsRejectInconsistentSpans)
{
    setThrowOnError(true);
    Simulator sim;
    stats::StageLatencyStats lat(&sim.rootStats(), "lat", "test");
    LatencySpan bad;
    bad.valid = true;
    bad.enqueue = 100; // enqueue after pick: must trip the assert
    bad.pick = 50;
    bad.bankReady = bad.issue = bad.burstStart = bad.done = 200;
    EXPECT_THROW(lat.record(bad), std::runtime_error);
    setThrowOnError(false);
}

} // namespace
} // namespace dramctrl
