/**
 * @file
 * Replays the repro files committed under tests/repros/.
 *
 * Each file is a self-contained fuzz scenario (ISSUE: the
 * `validate_repro` target). Files whose note starts with
 * "expect-fail" capture a recorded failure — typically an injected
 * fault — and must still fail when replayed; all other files are
 * regression scenarios that must pass. Either way the replay
 * exercises the full load -> materialise -> differential-run path on
 * real files, not in-memory JSON.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "validate/repro.hh"

#ifndef DRAMCTRL_REPRO_DIR
#error "DRAMCTRL_REPRO_DIR must point at tests/repros"
#endif

namespace dramctrl {
namespace validate {
namespace {

std::vector<std::string>
reproFiles()
{
    std::vector<std::string> files;
    for (const auto &e :
         std::filesystem::directory_iterator(DRAMCTRL_REPRO_DIR))
        if (e.path().extension() == ".json")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(ValidateRepro, CommittedReprosReplayAsRecorded)
{
    std::vector<std::string> files = reproFiles();
    ASSERT_FALSE(files.empty())
        << "no repro files in " << DRAMCTRL_REPRO_DIR;

    for (const std::string &path : files) {
        SCOPED_TRACE(path);
        ReproFile repro;
        std::string err;
        ASSERT_TRUE(loadReproFile(path, repro, &err)) << err;
        ASSERT_FALSE(repro.materialise().empty());

        bool expectFail = repro.note.rfind("expect-fail", 0) == 0;
        DiffResult dr = replay(repro);
        if (expectFail)
            EXPECT_FALSE(dr.pass)
                << "recorded failure no longer reproduces";
        else
            EXPECT_TRUE(dr.pass) << dr.describe();
    }
}

} // namespace
} // namespace validate
} // namespace dramctrl
