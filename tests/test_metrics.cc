/**
 * @file
 * MetricsRegistry tests: counter/gauge registration semantics, stats
 * tree attachment and flattening, path resolution, snapshot ordering,
 * and the JSON / Prometheus exposition writers (including escaping of
 * hostile names).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/dram_ctrl.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using obs::MetricSample;
using obs::MetricsRegistry;
using testutil::TestRequestor;

TEST(Metrics, CountersAndGaugesRegisterOnFirstUse)
{
    MetricsRegistry reg;
    reg.counter("a.hits").inc();
    reg.counter("a.hits").inc(2);
    reg.gauge("a.depth").set(3.5);

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    // Sorted by path: a.depth before a.hits.
    EXPECT_EQ(snap[0].path, "a.depth");
    EXPECT_FALSE(snap[0].isCounter);
    EXPECT_DOUBLE_EQ(snap[0].value, 3.5);
    EXPECT_EQ(snap[1].path, "a.hits");
    EXPECT_TRUE(snap[1].isCounter);
    EXPECT_DOUBLE_EQ(snap[1].value, 3.0);
}

TEST(Metrics, TypeConflictIsFatal)
{
    MetricsRegistry reg;
    reg.counter("x");
    setThrowOnError(true);
    EXPECT_THROW(reg.gauge("x"), std::runtime_error);
    setThrowOnError(false);
}

TEST(Metrics, AttachedStatsTreeIsFlattened)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    req.inject(0, MemCmd::ReadReq, 0);
    sim.run(fromUs(1.0));

    // The simulator auto-attaches its root stats tree.
    auto snap = sim.metrics().snapshot();
    auto find = [&](const std::string &path) -> const MetricSample * {
        for (const auto &s : snap)
            if (s.path == path)
                return &s;
        return nullptr;
    };

    const MetricSample *reads = find("mem_ctrl.readReqs");
    ASSERT_NE(reads, nullptr);
    EXPECT_DOUBLE_EQ(reads->value, 1.0);
    EXPECT_TRUE(reads->isCounter);

    // Histograms flatten into digest leaves.
    EXPECT_NE(find("mem_ctrl.readLatencyHist.count"), nullptr);
    EXPECT_NE(find("mem_ctrl.readLatencyHist.p50"), nullptr);
    EXPECT_NE(find("mem_ctrl.readLatencyHist.p99"), nullptr);
    // The attribution stages are part of the same namespace.
    EXPECT_NE(find("mem_ctrl.lat.queueing.p95"), nullptr);
    EXPECT_NE(find("mem_ctrl.lat.total.mean"), nullptr);

    // Snapshot ordering is sorted by path.
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].path, snap[i].path);
}

TEST(Metrics, ResolveStatFindsAttachedStats)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    EXPECT_NE(sim.metrics().resolveStat("mem_ctrl.readReqs"), nullptr);
    EXPECT_EQ(sim.metrics().resolveStat("mem_ctrl.nope"), nullptr);
    EXPECT_EQ(sim.metrics().resolveStat("nope.readReqs"), nullptr);
}

TEST(Metrics, DetachStatsRemovesTree)
{
    MetricsRegistry reg;
    Simulator sim;
    reg.attachStats(&sim.rootStats(), "x");
    reg.detachStats(&sim.rootStats());
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, JsonWriterEscapesHostileNames)
{
    MetricsRegistry reg;
    // A preset/instance name with quotes, a backslash and a newline —
    // exactly what used to corrupt config-derived JSON output.
    reg.gauge("evil\"name\\with\nnewline").set(1.0);
    std::ostringstream os;
    reg.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline"),
              std::string::npos)
        << json;
    // No raw newline survives inside the rendered key.
    EXPECT_EQ(json.find("with\nnewline"), std::string::npos);
}

TEST(Metrics, JsonWriterEmitsNullForNonFinite)
{
    MetricsRegistry reg;
    reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
    reg.gauge("good").set(2.0);
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_NE(os.str().find("\"bad\": null"), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("\"good\": 2"), std::string::npos);
}

TEST(Metrics, PromWriterFollowsExpositionFormat)
{
    MetricsRegistry reg;
    reg.counter("batch.jobs_completed", "jobs finished").inc(5);
    reg.gauge("sim.tick", "current tick").set(123456.0);
    std::ostringstream os;
    reg.writeProm(os);
    const std::string prom = os.str();

    // Counters: sanitised, prefixed, _total suffix, HELP/TYPE lines.
    EXPECT_NE(prom.find("# HELP dramctrl_batch_jobs_completed_total "
                        "jobs finished"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("# TYPE dramctrl_batch_jobs_completed_total "
                        "counter"),
              std::string::npos);
    EXPECT_NE(prom.find("dramctrl_batch_jobs_completed_total 5"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE dramctrl_sim_tick gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("dramctrl_sim_tick 123456"),
              std::string::npos);
    // Exposition format requires a trailing newline.
    ASSERT_FALSE(prom.empty());
    EXPECT_EQ(prom.back(), '\n');
}

TEST(Metrics, PromWriterSanitisesHostileMetricNames)
{
    MetricsRegistry reg;
    reg.gauge("evil\"name.with spaces-and/slashes").set(1.0);
    std::ostringstream os;
    reg.writeProm(os);
    const std::string prom = os.str();
    EXPECT_NE(
        prom.find("dramctrl_evil_name_with_spaces_and_slashes 1"),
        std::string::npos)
        << prom;
    // Nothing outside [a-zA-Z0-9_] leaks into a metric name.
    for (const char c : std::string("\" /-"))
        EXPECT_EQ(prom.find(std::string("dramctrl_evil") + c),
                  std::string::npos);
}

} // namespace
} // namespace dramctrl
