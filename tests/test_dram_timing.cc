/**
 * @file
 * Exact timing tests for the event-based controller.
 *
 * Every expected value is computed by hand from the DDR3-1333 timing
 * set (tRCD = tCL = tRP = 13.75 ns, tRAS = 35 ns, tBURST = 6 ns,
 * tWR = 15 ns, tWTR = 7.5 ns, tRRD = 6 ns, tXAW = 30 ns / 4 acts),
 * with refresh disabled and zero static latencies so the bare DRAM
 * protocol timing is visible at the port.
 */

#include <gtest/gtest.h>

#include "dram/dram_ctrl.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

constexpr Tick kRCD = 13750;
constexpr Tick kCL = 13750;
constexpr Tick kRP = 13750;
constexpr Tick kRAS = 35000;
constexpr Tick kBURST = 6000;
constexpr Tick kWTR = 7500;
constexpr Tick kRRD = 6000;
constexpr Tick kXAW = 30000;

class DramTimingTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    /** Address of (bank, row, col) under RoRaBaCoCh / DDR3-1333. */
    static Addr
    addrOf(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        // 64-byte bursts, 16 bursts per 1 KiB row, 8 banks, 1 rank.
        return ((row * 8 + bank) * 16 + col) * 64;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(DramTimingTest, FirstReadSeesActPlusCasPlusBurst)
{
    build(testutil::bareTimingConfig());
    auto id = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(10));
    // ACT at 0, column at tRCD, data at tRCD+tCL .. +tBURST.
    EXPECT_EQ(req->responseTick(id), kRCD + kCL + kBURST);
}

TEST_F(DramTimingTest, StaticLatenciesAddToReads)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.frontendLatency = fromNs(10);
    cfg.backendLatency = fromNs(10);
    build(cfg);
    auto id = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(id),
              kRCD + kCL + kBURST + fromNs(20));
}

TEST_F(DramTimingTest, RowHitPipelinesBackToBack)
{
    build(testutil::bareTimingConfig());
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 1));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(a), kRCD + kCL + kBURST);
    // The second burst is a row hit and streams right after the first.
    EXPECT_EQ(req->responseTick(b), kRCD + kCL + 2 * kBURST);
}

TEST_F(DramTimingTest, RowConflictPaysRasPlusPrePlusAct)
{
    build(testutil::bareTimingConfig());
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(0, 1));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(a), kRCD + kCL + kBURST);
    // Precharge cannot launch before tRAS after the activate; then the
    // full tRP + tRCD + tCL + tBURST pipeline.
    EXPECT_EQ(req->responseTick(b),
              kRAS + kRP + kRCD + kCL + kBURST);
}

TEST_F(DramTimingTest, BankParallelismHidesActivation)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(1, 0));
    sim->run(fromUs(10));
    // Bank 1's activate (at tRRD) overlaps bank 0's access; its data
    // follows immediately on the bus.
    EXPECT_EQ(req->responseTick(b), kRCD + kCL + 2 * kBURST);
}

TEST_F(DramTimingTest, ActivatesSpacedByTRRD)
{
    build(testutil::bareTimingConfig());
    // Two activates; the second bank's column path starts at tRRD.
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    (void)a;
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(1, 0));
    sim->run(fromUs(10));
    // With only two bursts the bus is the binding constraint here, but
    // the activate of bank 1 must not be before tRRD: its earliest
    // possible data completion is tRRD + tRCD + tCL + tBURST, which is
    // below the bus-serialised time, so the response equals the
    // bus-serialised value.
    EXPECT_EQ(req->responseTick(b),
              std::max(kRRD + kRCD + kCL + kBURST,
                       kRCD + kCL + 2 * kBURST));
}

TEST_F(DramTimingTest, ActivationWindowLimitsFifthActivate)
{
    build(testutil::bareTimingConfig());
    std::vector<std::uint64_t> ids;
    for (unsigned bank = 0; bank < 5; ++bank)
        ids.push_back(req->inject(0, MemCmd::ReadReq, addrOf(bank, 0)));
    sim->run(fromUs(10));

    // Activates at 0, tRRD, 2 tRRD, 3 tRRD; the fifth must wait for
    // the tXAW window to slide past the first.
    EXPECT_EQ(req->responseTick(ids[4]),
              kXAW + kRCD + kCL + kBURST);
    // The fourth is still only tRRD-spaced (bus-bound in practice).
    EXPECT_EQ(req->responseTick(ids[3]),
              std::max(3 * kRRD + kRCD + kCL + kBURST,
                       kRCD + kCL + 4 * kBURST));
}

TEST_F(DramTimingTest, ActivationLimitZeroDisablesWindow)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.activationLimit = 0;
    build(cfg);
    std::vector<std::uint64_t> ids;
    for (unsigned bank = 0; bank < 5; ++bank)
        ids.push_back(req->inject(0, MemCmd::ReadReq, addrOf(bank, 0)));
    sim->run(fromUs(10));
    // Purely bus-serialised now.
    EXPECT_EQ(req->responseTick(ids[4]), kRCD + kCL + 5 * kBURST);
}

TEST_F(DramTimingTest, WritesGetEarlyResponse)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.frontendLatency = fromNs(10);
    build(cfg);
    auto id = req->inject(0, MemCmd::WriteReq, addrOf(0, 0));
    sim->run(fromUs(10));
    // Acknowledged after the frontend pipeline only — the DRAM write
    // happens later, invisible to the requestor (Section II-A).
    EXPECT_EQ(req->responseTick(id), fromNs(10));
}

TEST_F(DramTimingTest, ReadForwardedFromWriteQueue)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.frontendLatency = fromNs(10);
    // Keep the write parked in the queue (drain threshold high).
    cfg.writeLowThreshold = 0.5;
    build(cfg);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0));
    auto rd = req->inject(fromNs(100), MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(10));
    // Snooped from the write queue: frontend latency only.
    EXPECT_EQ(req->responseTick(rd), fromNs(100) + fromNs(10));
    EXPECT_EQ(ctrl->ctrlStats().servicedByWrQ.value(), 1.0);
}

TEST_F(DramTimingTest, WriteToReadTurnaroundAppliesTWTR)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    // Drain writes immediately (low watermark at zero).
    cfg.writeLowThreshold = 0.0;
    cfg.writeHighThreshold = 0.5;
    build(cfg);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0, 0));
    // Read to the same open row, injected after the write drained.
    auto rd = req->inject(fromNs(1), MemCmd::ReadReq, addrOf(0, 0, 1));
    sim->run(fromUs(10));
    // Write data on the bus during [tRCD+tCL, tRCD+tCL+tBURST); the
    // read column command may only issue tWTR after the write data
    // completes, then tCL until its data.
    EXPECT_EQ(req->responseTick(rd),
              kRCD + kCL + kBURST + kWTR + kCL + kBURST);
}

TEST_F(DramTimingTest, RefreshDelaysSubsequentRead)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.tREFI = fromUs(1.0);
    cfg.timing.tRFC = fromNs(160);
    build(cfg);
    auto rd = req->inject(fromUs(1.0) + 1, MemCmd::ReadReq,
                          addrOf(0, 0));
    sim->run(fromUs(10));
    // The refresh launched exactly at tREFI (banks idle); the read's
    // activate waits for it to complete.
    Tick refresh_done = fromUs(1.0) + fromNs(160);
    EXPECT_EQ(req->responseTick(rd),
              refresh_done + kRCD + kCL + kBURST);
    EXPECT_GE(ctrl->ctrlStats().numRefreshes.value(), 1.0);
}

TEST_F(DramTimingTest, ReadUnaffectedWellBeforeRefresh)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.tREFI = fromUs(1.0);
    build(cfg);
    auto rd = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(rd), kRCD + kCL + kBURST);
}

TEST_F(DramTimingTest, MultiBurstPacketRespondsAfterLastBurst)
{
    build(testutil::bareTimingConfig());
    // 128 bytes = 2 bursts, same row.
    auto id = req->inject(0, MemCmd::ReadReq, addrOf(0, 0), 128);
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(id), kRCD + kCL + 2 * kBURST);
    EXPECT_EQ(ctrl->ctrlStats().readBursts.value(), 2.0);
    EXPECT_EQ(ctrl->ctrlStats().readReqs.value(), 1.0);
}

TEST_F(DramTimingTest, ClosedPagePaysActivateEveryAccess)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = PagePolicy::Closed;
    cfg.addrMapping = AddrMapping::RoCoRaBaCh;
    build(cfg);
    // Two bursts to the same row of the same bank; under RoCoRaBaCh
    // sequential bursts go to different banks, so aim both at bank 0:
    // col 0 and col 1 of bank 0 are 64*8 apart.
    auto a = req->inject(0, MemCmd::ReadReq, 0);
    auto b = req->inject(0, MemCmd::ReadReq, 64 * 8);
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(a), kRCD + kCL + kBURST);
    // The row was auto-precharged (from tRAS) and must be reopened.
    EXPECT_EQ(req->responseTick(b),
              kRAS + kRP + kRCD + kCL + kBURST);
    EXPECT_EQ(ctrl->ctrlStats().numActs.value(), 2.0);
    EXPECT_EQ(ctrl->ctrlStats().numPrecharges.value(), 2.0);
}

TEST_F(DramTimingTest, ClosedAdaptiveKeepsRowForQueuedHits)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = PagePolicy::ClosedAdaptive;
    build(cfg);
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 1));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(a), kRCD + kCL + kBURST);
    // The queued same-row access kept the page open.
    EXPECT_EQ(req->responseTick(b), kRCD + kCL + 2 * kBURST);
    EXPECT_EQ(ctrl->ctrlStats().numActs.value(), 1.0);
    // After the second access nothing was queued: the page closed.
    EXPECT_EQ(ctrl->ctrlStats().numPrecharges.value(), 1.0);
}

TEST_F(DramTimingTest, OpenPageLeavesRowOpenIndefinitely)
{
    build(testutil::bareTimingConfig());
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    (void)a;
    // Much later access to the same row still hits.
    auto b = req->inject(fromUs(5), MemCmd::ReadReq, addrOf(0, 0, 1));
    sim->run(fromUs(20));
    EXPECT_EQ(req->responseTick(b), fromUs(5) + kCL + kBURST);
    EXPECT_EQ(ctrl->ctrlStats().numActs.value(), 1.0);
    EXPECT_EQ(ctrl->ctrlStats().numPrecharges.value(), 0.0);
    EXPECT_EQ(ctrl->ctrlStats().readRowHits.value(), 1.0);
}

TEST_F(DramTimingTest, OpenAdaptiveClosesOnQueuedConflict)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = PagePolicy::OpenAdaptive;
    build(cfg);
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(0, 1));
    sim->run(fromUs(10));
    (void)a;
    (void)b;
    // The conflicting queued access triggered an early precharge after
    // the first access; both rows were activated, two precharges total
    // (the second access also saw a conflict-free queue and stayed
    // open — only one precharge).
    EXPECT_EQ(ctrl->ctrlStats().numActs.value(), 2.0);
    EXPECT_EQ(ctrl->ctrlStats().numPrecharges.value(), 1.0);
}

TEST_F(DramTimingTest, StatsCountRowHitsAndBytes)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 1));
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 2));
    sim->run(fromUs(10));
    const auto &s = ctrl->ctrlStats();
    EXPECT_EQ(s.readBursts.value(), 3.0);
    EXPECT_EQ(s.readRowHits.value(), 2.0);
    EXPECT_EQ(s.bytesRead.value(), 3 * 64.0);
    EXPECT_NEAR(s.rowHitRate.value(), 2.0 / 3.0, 1e-12);
}

} // namespace
} // namespace dramctrl
