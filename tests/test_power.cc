/**
 * @file
 * Tests for the Micron power model (Section II-G): hand-checked
 * component equations, monotonicity in activity, and end-to-end
 * behaviour driven by controller statistics.
 */

#include <gtest/gtest.h>

#include "dram/dram_presets.hh"
#include "harness/testbench.hh"
#include "power/micron_power.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using namespace power;
using harness::CtrlModel;
using harness::SingleChannelSystem;

TEST(PowerModelTest, ZeroWindowYieldsZero)
{
    PowerInputs in;
    PowerBreakdown out =
        computePower(in, presets::ddr3_1600(), ddr3Params());
    EXPECT_EQ(out.total(), 0.0);
}

TEST(PowerModelTest, IdleIsPureBackground)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    MicronPowerParams p = ddr3Params();
    PowerInputs in;
    in.window = fromUs(100);
    in.prechargeAllTime = in.window; // fully idle, all precharged
    PowerBreakdown out = computePower(in, cfg, p);

    EXPECT_EQ(out.actPre, 0.0);
    EXPECT_EQ(out.read, 0.0);
    EXPECT_EQ(out.write, 0.0);
    EXPECT_EQ(out.refresh, 0.0);
    // Background = IDD2N * VDD per device, 8 devices.
    EXPECT_NEAR(out.background, 0.032 * 1.5 * 8, 1e-9);
}

TEST(PowerModelTest, ActiveStandbyWhenRowsOpen)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    PowerInputs in;
    in.window = fromUs(100);
    in.prechargeAllTime = 0; // a row open the whole time
    PowerBreakdown out = computePower(in, cfg, ddr3Params());
    EXPECT_NEAR(out.background, 0.038 * 1.5 * 8, 1e-9);
}

TEST(PowerModelTest, ReadPowerMatchesHandCalculation)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    PowerInputs in;
    in.window = fromUs(1);
    in.readBusFraction = 0.5;
    PowerBreakdown out = computePower(in, cfg, ddr3Params());
    // (IDD4R - IDD3N) * VDD * util * devices
    EXPECT_NEAR(out.read, (0.157 - 0.038) * 1.5 * 0.5 * 8, 1e-9);
}

TEST(PowerModelTest, ActPrePowerMatchesHandCalculation)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    PowerInputs in;
    in.window = fromUs(1);
    in.numActs = 100;
    PowerBreakdown out = computePower(in, cfg, ddr3Params());

    double tras = 35e-9;
    double trc = (35 + 13.75) * 1e-9;
    double e_act =
        (0.055 * trc - 0.038 * tras - 0.032 * (trc - tras)) * 1.5;
    EXPECT_NEAR(out.actPre, e_act * 100 / 1e-6 * 8, 1e-9);
}

TEST(PowerModelTest, RefreshPowerMatchesHandCalculation)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    PowerInputs in;
    in.window = fromUs(7.8 * 10);
    in.numRefreshes = 10;
    PowerBreakdown out = computePower(in, cfg, ddr3Params());
    // 10 refreshes of tRFC=300ns in a 78 us window.
    double frac = 10 * 300e-9 / 78e-6;
    EXPECT_NEAR(out.refresh, (0.235 - 0.038) * 1.5 * frac * 8, 1e-9);
}

TEST(PowerModelTest, MonotonicInActivity)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    PowerInputs lo;
    lo.window = fromUs(10);
    lo.numActs = 10;
    lo.readBusFraction = 0.1;
    lo.prechargeAllTime = fromUs(8);

    PowerInputs hi = lo;
    hi.numActs = 1000;
    hi.readBusFraction = 0.8;
    hi.writeBusFraction = 0.1;
    hi.prechargeAllTime = fromUs(1);

    double p_lo = computePower(lo, cfg, ddr3Params()).total();
    double p_hi = computePower(hi, cfg, ddr3Params()).total();
    EXPECT_GT(p_hi, p_lo);
}

TEST(PowerModelTest, PresetParamsResolve)
{
    for (const auto &name : presets::names()) {
        MicronPowerParams p = paramsFor(name);
        EXPECT_GT(p.vdd, 0.0) << name;
        EXPECT_GT(p.idd4r, p.idd3n) << name;
        EXPECT_GT(p.idd3n, p.idd2n) << name;
    }
    setThrowOnError(true);
    EXPECT_THROW(paramsFor("nonsense"), std::runtime_error);
    setThrowOnError(false);
}

TEST(PowerModelTest, EndToEndFromControllerStats)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    SingleChannelSystem tb(cfg, CtrlModel::Event);
    DramGenConfig gc;
    gc.org = cfg.org;
    gc.strideBytes = 512;
    gc.numBanksTarget = 4;
    gc.numRequests = 2000;
    gc.minITT = gc.maxITT = fromNs(6);
    auto &gen = tb.addGen<DramGen>(gc);
    tb.runToCompletion([&] { return gen.done(); });

    PowerInputs in = tb.ctrl().powerInputs();
    EXPECT_GT(in.numActs, 0.0);
    EXPECT_GT(in.readBusFraction, 0.0);
    EXPECT_LE(in.readBusFraction, 1.0);

    PowerBreakdown out = computePower(in, cfg, ddr3Params());
    EXPECT_GT(out.total(), 0.0);
    EXPECT_GT(out.read, 0.0);
    EXPECT_GT(out.actPre, 0.0);
    EXPECT_GT(out.background, 0.0);
    // Sanity: a single DDR3 channel stays under ~10 W.
    EXPECT_LT(out.total(), 10.0);
}

TEST(PowerModelTest, HigherHitRateLowersActPrePower)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();

    auto run_with_stride = [&](std::uint64_t stride) {
        SingleChannelSystem tb(cfg, CtrlModel::Event);
        DramGenConfig gc;
        gc.org = cfg.org;
        gc.strideBytes = stride;
        gc.numBanksTarget = 4;
        gc.numRequests = 2000;
        gc.minITT = gc.maxITT = fromNs(6);
        auto &gen = tb.addGen<DramGen>(gc);
        tb.runToCompletion([&] { return gen.done(); });
        return computePower(tb.ctrl().powerInputs(), cfg,
                            ddr3Params());
    };

    PowerBreakdown low_hit = run_with_stride(64);    // all misses
    PowerBreakdown high_hit = run_with_stride(1024); // 15/16 hits
    EXPECT_GT(low_hit.actPre, high_hit.actPre);
}

} // namespace
} // namespace dramctrl
