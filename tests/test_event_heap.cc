/**
 * @file
 * Targeted tests for the intrusive-heap agenda: tie-break stability,
 * mutation from inside handlers, and a randomised cross-check against
 * an ordered-set reference model of the (when, priority, seq) order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "sim/eventq.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace {

class EventHeapTest : public ::testing::Test
{
  protected:
    void SetUp() override { setThrowOnError(true); }
    void TearDown() override { setThrowOnError(false); }
};

TEST_F(EventHeapTest, RescheduleJoinsBackOfTickClass)
{
    // a, b, c scheduled at t=10; rescheduling a to the same tick must
    // move it behind b and c (fresh sequence number), exactly like
    // deschedule+schedule on the old tree-based agenda.
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(a, 10);
    eq.schedule(b, 10);
    eq.schedule(c, 10);
    eq.reschedule(a, 10);
    eq.simulate();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST_F(EventHeapTest, SameTickFifoSurvivesHeapChurn)
{
    // Interleave far-future events with a same-tick FIFO group so the
    // group's members occupy scattered heap slots, then check the
    // group still fires in schedule order.
    EventQueue eq;
    std::vector<int> order;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    std::vector<std::unique_ptr<EventFunctionWrapper>> noise;
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&order, i] { order.push_back(i); }, "fifo"));
        noise.push_back(std::make_unique<EventFunctionWrapper>(
            [] {}, "noise"));
        eq.schedule(*noise.back(), 1000 + i);
        eq.schedule(*events.back(), 10);
    }
    // Remove half the noise to force removeAt() refills mid-heap.
    for (int i = 0; i < 32; i += 2)
        eq.deschedule(*noise[i]);
    eq.simulate(10);
    std::vector<int> expect;
    for (int i = 0; i < 32; ++i)
        expect.push_back(i);
    EXPECT_EQ(order, expect);
    for (auto &ev : noise)
        if (ev->scheduled())
            eq.deschedule(*ev);
}

TEST_F(EventHeapTest, DescheduleFromInsideProcess)
{
    // An event's handler deschedules a later event and a same-tick
    // event that has not yet run.
    EventQueue eq;
    bool later_fired = false;
    bool peer_fired = false;
    EventFunctionWrapper later([&] { later_fired = true; }, "later");
    EventFunctionWrapper peer([&] { peer_fired = true; }, "peer");
    EventFunctionWrapper killer(
        [&] {
            eq.deschedule(later);
            eq.deschedule(peer);
        },
        "killer");
    eq.schedule(killer, 10);
    eq.schedule(peer, 10);
    eq.schedule(later, 99);
    eq.simulate();
    EXPECT_FALSE(later_fired);
    EXPECT_FALSE(peer_fired);
    EXPECT_TRUE(eq.empty());
}

TEST_F(EventHeapTest, RescheduleFromInsideProcess)
{
    // A handler pulls a far-future event earlier and pushes a near
    // event further out; both must fire at their final ticks.
    EventQueue eq;
    std::vector<Tick> fired;
    EventFunctionWrapper far([&] { fired.push_back(eq.curTick()); },
                             "far");
    EventFunctionWrapper near([&] { fired.push_back(eq.curTick()); },
                              "near");
    EventFunctionWrapper mover(
        [&] {
            eq.reschedule(far, 20);
            eq.reschedule(near, 500);
        },
        "mover");
    eq.schedule(mover, 10);
    eq.schedule(near, 15);
    eq.schedule(far, 10000);
    eq.simulate();
    EXPECT_EQ(fired, (std::vector<Tick>{20, 500}));
}

TEST_F(EventHeapTest, SelfRescheduleFromProcessRepeats)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper repeater(
        [&] {
            if (++count < 5)
                eq.schedule(repeater, eq.curTick() + 10);
        },
        "repeater");
    eq.schedule(repeater, 10);
    eq.simulate();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST_F(EventHeapTest, RandomOpsMatchOrderedSetReference)
{
    // Thousands of random schedule/deschedule/reschedule operations,
    // mirrored into a std::set reference keyed (when, priority, seq)
    // with a shadow sequence counter that advances exactly when the
    // queue's does. Drains between bursts must fire events in the
    // reference order.
    EventQueue eq;
    std::mt19937 rng(0xD2A3);

    struct Probe : Event
    {
        Probe(int id, Priority prio, std::vector<int> &log)
            : Event(prio), id_(id), log_(&log)
        {}
        void process() override { log_->push_back(id_); }
        std::string name() const override
        {
            return "probe" + std::to_string(id_);
        }
        int id_;
        std::vector<int> *log_;
    };

    constexpr int kEvents = 64;
    std::vector<int> fired;
    std::vector<std::unique_ptr<Probe>> probes;
    for (int i = 0; i < kEvents; ++i)
        probes.push_back(std::make_unique<Probe>(
            i, static_cast<Event::Priority>(i % 3 - 1), fired));

    // Reference model: (when, priority, seq) -> id.
    using Key = std::tuple<Tick, int, std::uint64_t>;
    std::set<std::pair<Key, int>> ref;
    std::vector<Key> key_of(kEvents);
    std::uint64_t shadow_seq = 0;

    auto ref_erase = [&](int id) {
        ref.erase({key_of[id], id});
    };
    auto ref_insert = [&](int id, Tick when) {
        key_of[id] = {when, probes[id]->priority(), shadow_seq++};
        ref.insert({key_of[id], id});
    };

    for (int round = 0; round < 200; ++round) {
        for (int op = 0; op < 20; ++op) {
            int id = static_cast<int>(rng() % kEvents);
            Tick when = eq.curTick() + rng() % 300;
            Probe &ev = *probes[id];
            switch (rng() % 3) {
            case 0:
                if (!ev.scheduled()) {
                    eq.schedule(ev, when);
                    ref_insert(id, when);
                }
                break;
            case 1:
                if (ev.scheduled()) {
                    eq.deschedule(ev);
                    ref_erase(id);
                }
                break;
            case 2:
                if (ev.scheduled())
                    ref_erase(id);
                eq.reschedule(ev, when);
                ref_insert(id, when);
                break;
            }
            ASSERT_EQ(eq.size(), ref.size());
            ASSERT_EQ(eq.nextTick(), ref.empty()
                                         ? kMaxTick
                                         : std::get<0>(ref.begin()->first));
        }

        // Drain a few events and compare the firing order.
        std::size_t drain = std::min<std::size_t>(ref.size(), rng() % 8);
        fired.clear();
        std::vector<int> expect;
        for (std::size_t i = 0; i < drain; ++i) {
            expect.push_back(ref.begin()->second);
            ref.erase(ref.begin());
            eq.serviceOne();
        }
        ASSERT_EQ(fired, expect) << "divergence in round " << round;
    }

    // Final full drain.
    fired.clear();
    std::vector<int> expect;
    while (!ref.empty()) {
        expect.push_back(ref.begin()->second);
        ref.erase(ref.begin());
    }
    eq.simulate();
    EXPECT_EQ(fired, expect);
}

} // namespace
} // namespace dramctrl
