/**
 * @file
 * Controller plugin chain tests (`ctest -R plugin_` and the
 * `validate_plugin_conservation` property run).
 *
 * Covers, per docs/PLUGINS.md:
 *
 *  - chain construction: parse, registration order, typed accessors,
 *    duplicate-kind and two-refresh-manager rejection, the cycle
 *    model refusing event-only plugins;
 *  - EccPlugin in isolation: determinism, the seeded error rate
 *    against its binomial expectation, and the conservation law
 *    wordsWithErrors == corrected + detected + escaped;
 *  - PracPlugin in isolation: threshold alerts, mitigation and
 *    refresh clearing semantics;
 *  - the ProtocolChecker's plugin rules ("prac", "tRFM", "tRFCpb",
 *    REFpb legality, the per-bank tREFI deadline) on hand-built
 *    command streams;
 *  - the event model end to end: a full chain audits clean, each
 *    test fault hook trips exactly its rule, per-bank and all-bank
 *    refresh managers answer refresh-insensitive traffic
 *    identically;
 *  - ECC conservation across fuzzer-drawn configurations through the
 *    differential runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "dram/dram_presets.hh"
#include "dram/plugin/plugin.hh"
#include "dram/protocol_checker.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "stats/stats.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "validate/config_fuzzer.hh"
#include "validate/diff_runner.hh"

#include "test_util.hh"

namespace dramctrl {
namespace {

using plugin::BurstInfo;
using plugin::EccPlugin;
using plugin::PluginChain;
using plugin::PracPlugin;
using plugin::RefreshManager;

DRAMOrg
testOrg()
{
    return presets::ddr3_1333().org;
}

// ------------------------------------------------- parse and chain

TEST(PluginParse, ValidListAppendsInOrder)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    std::string err;
    ASSERT_TRUE(plugin::parsePluginList("ecc,prac,refmgr", cfg, err))
        << err;
    ASSERT_EQ(cfg.plugins.size(), 3u);
    EXPECT_EQ(cfg.plugins[0].kind, "ecc");
    EXPECT_EQ(cfg.plugins[1].kind, "prac");
    EXPECT_EQ(cfg.plugins[2].kind, "refmgr");
    EXPECT_TRUE(cfg.hasPlugin("prac"));
    EXPECT_EQ(cfg.findPlugin("refmgr-pb"), nullptr);
    cfg.check(); // the default specs must be valid
}

TEST(PluginParse, UnknownKindRejected)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    std::string err;
    EXPECT_FALSE(plugin::parsePluginList("ecc,bogus", cfg, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(PluginChainTest, BuildMatchesConfigOrder)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    std::string err;
    ASSERT_TRUE(plugin::parsePluginList("prac,ecc,refmgr-pb", cfg, err));

    stats::Group root("ctrl");
    PluginChain chain = plugin::buildChain(cfg, root, false, "ctrl");
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_STREQ(chain.plugins()[0]->kind(), "prac");
    EXPECT_STREQ(chain.plugins()[1]->kind(), "ecc");
    EXPECT_STREQ(chain.plugins()[2]->kind(), "refmgr-pb");
    EXPECT_NE(chain.ecc(), nullptr);
    EXPECT_NE(chain.prac(), nullptr);
    ASSERT_NE(chain.refreshManager(), nullptr);
    EXPECT_TRUE(chain.refreshManager()->perBank());
}

TEST(PluginChainTest, DuplicateKindIsFatal)
{
    PluginSpec spec;
    spec.kind = "ecc";
    stats::Group root("ctrl");
    stats::Group other("ctrl2");

    PluginChain chain;
    chain.add(std::make_unique<EccPlugin>(spec, testOrg(), root));
    setThrowOnError(true);
    EXPECT_THROW(
        chain.add(std::make_unique<EccPlugin>(spec, testOrg(), other)),
        std::runtime_error);
    setThrowOnError(false);

    // The config validator rejects the same chain up front.
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.plugins.push_back(spec);
    cfg.plugins.push_back(spec);
    setThrowOnError(true);
    EXPECT_THROW(cfg.check(), std::runtime_error);
    setThrowOnError(false);
}

TEST(PluginChainTest, TwoRefreshManagersAreFatal)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    std::string err;
    ASSERT_TRUE(plugin::parsePluginList("refmgr,refmgr-pb", cfg, err));
    setThrowOnError(true);
    EXPECT_THROW(cfg.check(), std::runtime_error);
    setThrowOnError(false);
}

TEST(PluginChainTest, PerBankRefreshRejectedOnCycleModel)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    std::string err;
    ASSERT_TRUE(plugin::parsePluginList("refmgr-pb", cfg, err));
    stats::Group root("ctrl");
    setThrowOnError(true);
    EXPECT_THROW(plugin::buildChain(cfg, root, /*cycle_model=*/true,
                                    "cycle_ctrl"),
                 std::runtime_error);
    setThrowOnError(false);
    // The event model accepts the same chain.
    PluginChain chain = plugin::buildChain(cfg, root, false, "ctrl");
    EXPECT_EQ(chain.size(), 1u);
}

// ------------------------------------------------------- ECC plugin

/** Feed @p bursts read bursts at spread-out addresses. */
void
feedReads(EccPlugin &ecc, unsigned bursts)
{
    for (unsigned i = 0; i < bursts; ++i) {
        BurstInfo b;
        b.isRead = true;
        b.rank = 0;
        b.bank = i % 8;
        b.row = i / 8;
        b.col = i % 16;
        b.doneTick = fromNs(10.0) * (i + 1);
        ecc.onBurstComplete(b);
    }
}

TEST(EccUnit, DeterministicAcrossInstances)
{
    PluginSpec spec;
    spec.kind = "ecc";
    spec.eccBer = 1e-3;
    spec.eccSeed = 42;

    stats::Group rootA("a"), rootB("b");
    EccPlugin a(spec, testOrg(), rootA);
    EccPlugin b(spec, testOrg(), rootB);
    feedReads(a, 1000);
    feedReads(b, 1000);

    EXPECT_GT(a.wordsWithErrors(), 0u);
    EXPECT_EQ(a.wordsProcessed(), b.wordsProcessed());
    EXPECT_EQ(a.wordsWithErrors(), b.wordsWithErrors());
    EXPECT_EQ(a.bitErrorsInjected(), b.bitErrorsInjected());
    EXPECT_EQ(a.correctedWords(), b.correctedWords());
    EXPECT_EQ(a.detectedWords(), b.detectedWords());
    EXPECT_EQ(a.escapedWords(), b.escapedWords());

    // A different seed draws a different error pattern.
    PluginSpec reseeded = spec;
    reseeded.eccSeed = 43;
    stats::Group rootC("c");
    EccPlugin c(reseeded, testOrg(), rootC);
    feedReads(c, 1000);
    EXPECT_NE(a.bitErrorsInjected(), c.bitErrorsInjected());
}

TEST(EccUnit, ErrorRateMatchesBinomialExpectation)
{
    PluginSpec spec;
    spec.kind = "ecc";
    spec.eccBer = 1e-3;
    spec.eccSeed = 7;

    stats::Group root("ctrl");
    EccPlugin ecc(spec, testOrg(), root);
    ASSERT_EQ(ecc.codewordBits(), 72u); // SECDED 64+8
    const unsigned bursts = 4000;
    feedReads(ecc, bursts);

    const std::uint64_t words =
        std::uint64_t(bursts) * ecc.wordsPerBurst();
    ASSERT_EQ(ecc.wordsProcessed(), words);

    // P(word has >= 1 error) = 1 - (1 - ber)^codewordBits. With 32k
    // words the relative sampling error is ~2%, so a 15% band is
    // dozens of standard deviations wide.
    const double q = 1.0 - std::pow(1.0 - spec.eccBer, 72.0);
    const double observed =
        static_cast<double>(ecc.wordsWithErrors()) /
        static_cast<double>(words);
    EXPECT_NEAR(observed, q, 0.15 * q);

    // Mean injected errors per word: n * p.
    const double rate =
        static_cast<double>(ecc.bitErrorsInjected()) /
        static_cast<double>(words);
    EXPECT_NEAR(rate, 72.0 * spec.eccBer, 0.15 * 72.0 * spec.eccBer);
}

TEST(EccUnit, ConservationAndWriteAccounting)
{
    PluginSpec spec;
    spec.kind = "ecc";
    spec.eccBer = 5e-3; // high enough that every class is populated
    spec.eccCorrectBits = 1;
    spec.eccDetectBits = 2;
    spec.eccSeed = 11;

    stats::Group root("ctrl");
    EccPlugin ecc(spec, testOrg(), root);
    feedReads(ecc, 3000);

    // Writes only encode; they must not move the decode counters.
    const std::uint64_t processed = ecc.wordsProcessed();
    BurstInfo wr;
    wr.isRead = false;
    for (unsigned i = 0; i < 50; ++i)
        ecc.onBurstComplete(wr);
    EXPECT_EQ(ecc.wordsProcessed(), processed);

    EXPECT_GT(ecc.correctedWords(), 0u);
    EXPECT_GT(ecc.detectedWords(), 0u);
    EXPECT_EQ(ecc.wordsWithErrors(),
              ecc.correctedWords() + ecc.detectedWords() +
                  ecc.escapedWords());
    EXPECT_LE(ecc.wordsWithErrors(), ecc.wordsProcessed());
}

// ------------------------------------------------------ PRAC plugin

CmdRecord
cmd(Tick tick, DRAMCmd c, unsigned rank, unsigned bank,
    std::uint64_t row = 0)
{
    return CmdRecord{tick, c, rank, bank, row};
}

TEST(PracUnit, ThresholdRaisesAlertAndMitigationClears)
{
    PluginSpec spec;
    spec.kind = "prac";
    spec.pracThreshold = 4;

    stats::Group root("ctrl");
    PracPlugin prac(spec, testOrg(), root);

    for (unsigned i = 0; i < 3; ++i)
        prac.onCommand(cmd(fromNs(50.0) * i, DRAMCmd::Act, 0, 0, 5));
    EXPECT_FALSE(prac.mitigationPending(0));
    EXPECT_EQ(prac.rowCount(0, 5), 3u);
    EXPECT_EQ(prac.alertsRaised(), 0u);

    prac.onCommand(cmd(fromNs(150.0), DRAMCmd::Act, 0, 0, 5));
    EXPECT_TRUE(prac.mitigationPending(0));
    EXPECT_EQ(prac.alertsRaised(), 1u);
    EXPECT_EQ(prac.rowCount(0, 5), 4u);

    // Other banks are unaffected.
    EXPECT_FALSE(prac.mitigationPending(1));

    // The mitigation refresh clears the bank's counters and alert.
    prac.onCommand(cmd(fromNs(200.0), DRAMCmd::RefM, 0, 0));
    EXPECT_FALSE(prac.mitigationPending(0));
    EXPECT_EQ(prac.rowCount(0, 5), 0u);
    EXPECT_EQ(prac.mitigations(), 1u);
}

TEST(PracUnit, AllBankRefreshClearsWholeRank)
{
    PluginSpec spec;
    spec.kind = "prac";
    spec.pracThreshold = 2;

    stats::Group root("ctrl");
    PracPlugin prac(spec, testOrg(), root);

    prac.onCommand(cmd(0, DRAMCmd::Act, 0, 0, 9));
    prac.onCommand(cmd(fromNs(50.0), DRAMCmd::Act, 0, 0, 9));
    prac.onCommand(cmd(fromNs(60.0), DRAMCmd::Act, 0, 3, 2));
    EXPECT_TRUE(prac.mitigationPending(0));
    EXPECT_EQ(prac.rowCount(3, 2), 1u);

    prac.onCommand(cmd(fromNs(100.0), DRAMCmd::Ref, 0, 0));
    EXPECT_FALSE(prac.mitigationPending(0));
    EXPECT_EQ(prac.rowCount(0, 9), 0u);
    EXPECT_EQ(prac.rowCount(3, 2), 0u);
    // An all-bank REF is not a mitigation.
    EXPECT_EQ(prac.mitigations(), 0u);
}

TEST(RefreshManagerUnit, RotationAndInterval)
{
    PluginSpec spec;
    spec.kind = "refmgr-pb";
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    stats::Group root("ctrl");

    RefreshManager pb(spec, cfg.org, root, /*per_bank=*/true);
    EXPECT_EQ(pb.interval(cfg),
              cfg.effectiveREFI() / cfg.org.banksPerRank);
    for (unsigned round = 0; round < 2; ++round) {
        for (unsigned b = 0; b < cfg.org.banksPerRank; ++b) {
            EXPECT_EQ(pb.nextBank(), b);
            EXPECT_EQ(pb.advance(), b);
        }
    }

    RefreshManager all(spec, cfg.org, root, /*per_bank=*/false);
    EXPECT_EQ(all.interval(cfg), cfg.effectiveREFI());
    EXPECT_FALSE(all.perBank());
}

// ------------------------------------- checker rules on hand logs

DRAMOrg
checkerOrg()
{
    return testutil::bareTimingConfig().org;
}

DRAMTiming
checkerTiming()
{
    return testutil::bareTimingConfig().timing; // tREFI == 0
}

std::vector<std::string>
rulesOf(const std::vector<ProtocolViolation> &vs)
{
    std::vector<std::string> rules;
    for (const auto &v : vs)
        rules.push_back(v.rule);
    return rules;
}

TEST(CheckerPluginRules, PracFiresOnUnmitigatedThresholdAct)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    checker.setPracGuard(3, fromNs(80.0));

    // Three ACT/PRE pairs to row 5 reach the threshold; the fourth
    // ACT arrives without an intervening REFm.
    std::vector<CmdRecord> log{
        cmd(0, DRAMCmd::Act, 0, 0, 5),
        cmd(fromNs(35.0), DRAMCmd::Pre, 0, 0),
        cmd(fromNs(48.75), DRAMCmd::Act, 0, 0, 5),
        cmd(fromNs(83.75), DRAMCmd::Pre, 0, 0),
        cmd(fromNs(97.5), DRAMCmd::Act, 0, 0, 5),
        cmd(fromNs(132.5), DRAMCmd::Pre, 0, 0),
        cmd(fromNs(146.25), DRAMCmd::Act, 0, 0, 5),
    };
    auto vs = checker.check(log);
    ASSERT_EQ(vs.size(), 1u) << (vs.empty() ? "" : vs[0].toString());
    EXPECT_EQ(vs[0].rule, "prac");

    // The same stream with a mitigation refresh before the fourth
    // ACT is compliant (REFm after the precharge settled, the ACT
    // after the tRFM blackout).
    log.insert(log.end() - 1,
               cmd(fromNs(147.0), DRAMCmd::RefM, 0, 0));
    log.back() = cmd(fromNs(230.0), DRAMCmd::Act, 0, 0, 5);
    EXPECT_TRUE(checker.check(log).empty());
}

TEST(CheckerPluginRules, MitigationBlackoutIsTRFM)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    checker.setPracGuard(3, fromNs(80.0));

    std::vector<CmdRecord> log{
        cmd(0, DRAMCmd::RefM, 0, 0),
        cmd(fromNs(40.0), DRAMCmd::Act, 0, 0, 1),
    };
    auto vs = checker.check(log);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "tRFM");

    // At tRFM the bank is usable again.
    log[1] = cmd(fromNs(80.0), DRAMCmd::Act, 0, 0, 1);
    EXPECT_TRUE(checker.check(log).empty());
}

TEST(CheckerPluginRules, PerBankBlackoutIsTRFCpb)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    checker.setPerBankRefresh(fromNs(60.0));

    std::vector<CmdRecord> log{
        cmd(0, DRAMCmd::RefPb, 0, 0),
        cmd(fromNs(30.0), DRAMCmd::Act, 0, 0, 1),
    };
    auto vs = checker.check(log);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "tRFCpb");

    // Only the refreshed bank is blacked out; a neighbour may
    // activate immediately.
    log[1] = cmd(fromNs(30.0), DRAMCmd::Act, 0, 1, 1);
    EXPECT_TRUE(checker.check(log).empty());
}

TEST(CheckerPluginRules, RefPbLegality)
{
    ProtocolChecker checker(checkerOrg(), checkerTiming());
    checker.setPerBankRefresh(fromNs(60.0));

    // REFpb to a bank with an open row.
    std::vector<CmdRecord> open{
        cmd(0, DRAMCmd::Act, 0, 0, 1),
        cmd(fromNs(40.0), DRAMCmd::RefPb, 0, 0),
    };
    auto vs = checker.check(open);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "state");

    // REFpb before the precharge settled (tRP).
    std::vector<CmdRecord> early{
        cmd(0, DRAMCmd::Act, 0, 0, 1),
        cmd(fromNs(35.0), DRAMCmd::Pre, 0, 0),
        cmd(fromNs(40.0), DRAMCmd::RefPb, 0, 0),
    };
    vs = checker.check(early);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "tRP");
}

TEST(CheckerPluginRules, PerBankRefreshDeadline)
{
    // tREFI = 1 us, default slack 9 -> a bank starves at 9 us.
    DRAMTiming t = checkerTiming();
    t.tREFI = fromUs(1.0);
    ProtocolChecker checker(checkerOrg(), t);
    checker.setPerBankRefresh(fromNs(60.0));

    // REFpb rotates over banks 1..7 every 800 ns; bank 0 is never
    // refreshed. The stream itself is REFpb-legal throughout.
    std::vector<CmdRecord> log;
    for (unsigned k = 0; k < 12; ++k)
        log.push_back(cmd(fromNs(800.0) * k, DRAMCmd::RefPb, 0,
                          1 + (k % 7)));
    log.push_back(cmd(fromUs(9.6), DRAMCmd::RefPb, 0, 1));
    auto vs = checker.check(log);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "tREFI");
    EXPECT_NE(vs[0].detail.find("1 bank(s) of rank 0"),
              std::string::npos)
        << vs[0].detail;
    EXPECT_NE(vs[0].detail.find("bank 0"), std::string::npos);
}

TEST(CheckerPluginRules, AllBankLapseCoalescesToOneReport)
{
    DRAMTiming t = checkerTiming();
    t.tREFI = fromUs(1.0);
    ProtocolChecker checker(checkerOrg(), t);

    // No refresh ever: the first command past the deadline reports
    // all eight banks once; the latch suppresses repeats.
    std::vector<CmdRecord> log{
        cmd(fromUs(9.5), DRAMCmd::Act, 0, 0, 1),
        cmd(fromUs(9.5) + fromNs(6.25), DRAMCmd::Act, 0, 1, 1),
    };
    auto vs = checker.check(log);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "tREFI");
    EXPECT_NE(vs[0].detail.find("8 bank(s) of rank 0"),
              std::string::npos)
        << vs[0].detail;
}

// ------------------------------------------- event-model integration

struct PluginRun
{
    std::vector<CmdRecord> log;
    std::vector<ProtocolViolation> violations;
    std::uint64_t rdCmds = 0;
    std::uint64_t refCmds = 0;
    std::uint64_t refPbCmds = 0;
    std::uint64_t refMCmds = 0;
    std::uint64_t eccWordsProcessed = 0;
    std::uint64_t eccWordsWithErrors = 0;
    std::uint64_t eccCorrected = 0;
    std::uint64_t eccDetected = 0;
    std::uint64_t eccEscaped = 0;
    unsigned eccWordsPerBurst = 0;
    std::uint64_t pracAlerts = 0;
    std::uint64_t pracMitigations = 0;
    std::uint64_t enqueues = 0;
    std::string statsJson;
};

/**
 * Run @p requests random/linear requests through the event model with
 * @p cfg, audit the command log with an armed checker, and collect
 * the plugin counters. @p mutate may install test fault hooks after
 * construction.
 */
PluginRun
runEventWithPlugins(DRAMCtrlConfig cfg, std::uint64_t requests,
                    Tick itt, bool linear,
                    const std::function<void(DRAMCtrl &)> &mutate = {})
{
    cfg.writeLowThreshold = 0.0;
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);
    CmdLogger logger;
    tb.ctrl().setCmdLogger(&logger);
    if (mutate)
        mutate(tb.eventCtrl());

    GenConfig gc;
    gc.windowSize = 1ULL << 16; // 64 rows: forces row re-activation
    gc.readPct = linear ? 100 : 70;
    gc.minITT = gc.maxITT = itt;
    gc.numRequests = requests;
    gc.seed = 13;

    BaseGen *gen;
    if (linear)
        gen = &tb.addGen<LinearGen>(gc);
    else
        gen = &tb.addGen<RandomGen>(gc);
    tb.runToCompletion([&] { return gen->done(); });

    PluginRun out;
    out.log = logger.log();
    for (const CmdRecord &c : out.log) {
        switch (c.cmd) {
          case DRAMCmd::Rd: ++out.rdCmds; break;
          case DRAMCmd::Ref: ++out.refCmds; break;
          case DRAMCmd::RefPb: ++out.refPbCmds; break;
          case DRAMCmd::RefM: ++out.refMCmds; break;
          default: break;
        }
    }

    ProtocolChecker checker(cfg.org, cfg.timing);
    plugin::armChecker(checker, cfg);
    checker.setMaxStoredViolations(16);
    out.violations = checker.check(out.log);

    const PluginChain &chain = tb.eventCtrl().pluginChain();
    if (const EccPlugin *ecc = chain.ecc()) {
        out.eccWordsProcessed = ecc->wordsProcessed();
        out.eccWordsWithErrors = ecc->wordsWithErrors();
        out.eccCorrected = ecc->correctedWords();
        out.eccDetected = ecc->detectedWords();
        out.eccEscaped = ecc->escapedWords();
        out.eccWordsPerBurst = ecc->wordsPerBurst();
    }
    if (const PracPlugin *prac = chain.prac()) {
        out.pracAlerts = prac->alertsRaised();
        out.pracMitigations = prac->mitigations();
    }
    if (!chain.empty())
        out.enqueues = chain.plugins().front()->enqueuesSeen();

    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    out.statsJson = os.str();
    return out;
}

DRAMCtrlConfig
fullChainConfig()
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    std::string err;
    EXPECT_TRUE(plugin::parsePluginList("ecc,prac,refmgr", cfg, err));
    for (PluginSpec &p : cfg.plugins) {
        if (p.kind == "ecc") {
            p.eccBer = 1e-3;
            p.eccSeed = 99;
        } else if (p.kind == "prac") {
            p.pracThreshold = 4;
        }
    }
    return cfg;
}

TEST(PluginIntegration, FullChainAuditsCleanOnEventModel)
{
    PluginRun run =
        runEventWithPlugins(fullChainConfig(), 600, fromNs(6.0),
                            /*linear=*/false);

    EXPECT_TRUE(run.violations.empty())
        << run.violations[0].toString();

    // Every request passed the enqueue hook.
    EXPECT_EQ(run.enqueues, 600u);

    // ECC decoded exactly the read bursts that went to DRAM.
    EXPECT_EQ(run.eccWordsProcessed,
              run.rdCmds * run.eccWordsPerBurst);
    EXPECT_GT(run.eccWordsWithErrors, 0u);
    EXPECT_EQ(run.eccWordsWithErrors,
              run.eccCorrected + run.eccDetected + run.eccEscaped);

    // The tight threshold forced mitigations, and each observed
    // REFm is counted by the plugin.
    EXPECT_GT(run.pracAlerts, 0u);
    EXPECT_GT(run.refMCmds, 0u);
    EXPECT_EQ(run.pracMitigations, run.refMCmds);
    EXPECT_LE(run.pracMitigations, run.pracAlerts);

    // Plugin statistics flow into the stats dump.
    EXPECT_NE(run.statsJson.find("wordsProcessed"), std::string::npos);
    EXPECT_NE(run.statsJson.find("alertsRaised"), std::string::npos);
    EXPECT_NE(run.statsJson.find("allBankRefs"), std::string::npos);
}

TEST(PluginIntegration, SkippedMitigationTripsPracRule)
{
    PluginRun run = runEventWithPlugins(
        fullChainConfig(), 600, fromNs(6.0), /*linear=*/false,
        [](DRAMCtrl &ctrl) { ctrl.testSkipPracMitigation(); });

    ASSERT_FALSE(run.violations.empty());
    EXPECT_EQ(run.refMCmds, 0u);
    auto rules = rulesOf(run.violations);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "prac"),
              rules.end());
}

DRAMCtrlConfig
perBankConfig(Tick trefi)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.timing.tREFI = trefi;
    std::string err;
    EXPECT_TRUE(plugin::parsePluginList("refmgr-pb", cfg, err));
    return cfg;
}

TEST(PluginIntegration, PerBankRefreshAuditsClean)
{
    PluginRun run = runEventWithPlugins(perBankConfig(fromUs(1.0)),
                                        600, fromNs(6.0),
                                        /*linear=*/false);
    EXPECT_TRUE(run.violations.empty())
        << run.violations[0].toString();
    EXPECT_GT(run.refPbCmds, 0u);
    EXPECT_EQ(run.refCmds, 0u); // the plugin replaces all-bank REF
}

TEST(PluginIntegration, ShrunkTRFCpbTripsRule)
{
    PluginRun run = runEventWithPlugins(
        perBankConfig(fromUs(1.0)), 600, fromNs(6.0),
        /*linear=*/false,
        [](DRAMCtrl &ctrl) { ctrl.testScaleTRFCpb(0.0); });

    ASSERT_FALSE(run.violations.empty());
    auto rules = rulesOf(run.violations);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "tRFCpb"),
              rules.end());
}

TEST(PluginIntegration, StalledBankTripsRefreshDeadline)
{
    // 600 requests x 30 ns inject ~18 us of traffic; with tREFI =
    // 1 us the starved bank blows the 9 us deadline mid-run.
    PluginRun run = runEventWithPlugins(
        perBankConfig(fromUs(1.0)), 600, fromNs(30.0),
        /*linear=*/false,
        [](DRAMCtrl &ctrl) { ctrl.testStallPerBankRefresh(0); });

    ASSERT_FALSE(run.violations.empty());
    auto rules = rulesOf(run.violations);
    auto it = std::find(rules.begin(), rules.end(), "tREFI");
    ASSERT_NE(it, rules.end());
    const ProtocolViolation &v =
        run.violations[static_cast<std::size_t>(
            it - rules.begin())];
    EXPECT_NE(v.detail.find("bank 0"), std::string::npos) << v.detail;
}

TEST(PluginIntegration, PerBankMatchesAllBankOnInsensitiveTraffic)
{
    // Read-only, low-intensity linear traffic is refresh-insensitive:
    // both refresh policies must service exactly the same reads from
    // DRAM, differing only in the refresh commands themselves.
    DRAMCtrlConfig allBank = presets::ddr3_1333();
    allBank.timing.tREFI = fromUs(1.0);
    std::string err;
    ASSERT_TRUE(plugin::parsePluginList("refmgr", allBank, err));

    PluginRun a = runEventWithPlugins(allBank, 300, fromNs(50.0),
                                      /*linear=*/true);
    PluginRun b = runEventWithPlugins(perBankConfig(fromUs(1.0)), 300,
                                      fromNs(50.0), /*linear=*/true);

    EXPECT_TRUE(a.violations.empty());
    EXPECT_TRUE(b.violations.empty());
    EXPECT_EQ(a.rdCmds, b.rdCmds);
    EXPECT_EQ(a.rdCmds, 300u); // read-only: every request hits DRAM

    // The per-bank manager spreads one REFpb per bank over each
    // tREFI, so it issues roughly banksPerRank times as many refresh
    // commands as the all-bank baseline over the same span.
    EXPECT_GT(a.refCmds, 0u);
    EXPECT_EQ(a.refPbCmds, 0u);
    EXPECT_EQ(b.refCmds, 0u);
    EXPECT_GT(b.refPbCmds, 2 * a.refCmds);
}

// -------------------------- fuzzed ECC conservation (validate_)

TEST(ValidatePlugin, EccConservationAcrossFuzzedConfigs)
{
    // Draw plugin-enabled configurations and push each through the
    // full differential runner, which enforces the ECC conservation
    // law per model on top of the functional and protocol checks.
    Random rng(9001);
    validate::FuzzerOptions fo;
    fo.withPlugins = true;
    fo.numRequests = 120;

    unsigned eccRuns = 0;
    for (unsigned i = 0; i < 6; ++i) {
        validate::FuzzCase fc = validate::sampleCase(rng, fo);
        if (!fc.cfg.hasPlugin("ecc")) {
            // This property targets ECC: guarantee an armed plugin.
            PluginSpec ecc;
            ecc.kind = "ecc";
            ecc.eccBer = 1e-4;
            ecc.eccSeed = 17 + i;
            fc.cfg.plugins.push_back(ecc);
            fc.cfg.check();
        }
        ++eccRuns;

        validate::DiffOptions opts;
        validate::DiffResult dr =
            validate::runDiff(fc, /*streamSeed=*/500 + i, opts);
        EXPECT_TRUE(dr.pass)
            << validate::summarize(fc) << "\n" << dr.describe();

        ASSERT_TRUE(dr.event.eccArmed);
        EXPECT_EQ(dr.event.eccWordsWithErrors,
                  dr.event.eccCorrected + dr.event.eccDetected +
                      dr.event.eccEscaped);
        EXPECT_EQ(dr.event.eccWordsProcessed,
                  dr.event.rdCmds * dr.event.eccWordsPerBurst);
    }
    EXPECT_EQ(eccRuns, 6u);
}

} // namespace
} // namespace dramctrl
