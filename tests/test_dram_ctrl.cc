/**
 * @file
 * Behavioural tests for the event-based controller: queue flow control,
 * write merging, the write-drain state machine, scheduler policies,
 * burst chopping for narrow interfaces, and packet conservation.
 */

#include <gtest/gtest.h>

#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

class DramCtrlTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    static Addr
    addrOf(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        return ((row * 8 + bank) * 16 + col) * 64;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(DramCtrlTest, FullReadQueuePushesBack)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.readBufferSize = 4;
    build(cfg);
    // Inject more reads at one tick than the queue holds.
    for (unsigned i = 0; i < 8; ++i)
        req->inject(0, MemCmd::ReadReq, addrOf(0, i));
    sim->run(fromUs(50));
    EXPECT_TRUE(req->allResponded());
    EXPECT_GE(req->retries(), 1u);
    EXPECT_GE(ctrl->ctrlStats().numRdRetry.value(), 1.0);
    EXPECT_EQ(req->responses().size(), 8u);
}

TEST_F(DramCtrlTest, FullWriteQueuePushesBack)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeBufferSize = 4;
    cfg.minWritesPerSwitch = 2;
    build(cfg);
    for (unsigned i = 0; i < 10; ++i)
        req->inject(0, MemCmd::WriteReq, addrOf(0, i));
    sim->run(fromUs(50));
    EXPECT_TRUE(req->allResponded());
    EXPECT_GE(ctrl->ctrlStats().numWrRetry.value(), 1.0);
}

TEST_F(DramCtrlTest, WritesToSameBurstMerge)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeLowThreshold = 0.5; // keep writes parked
    build(cfg);
    // Two half-burst writes into the same 64-byte burst window.
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0), 32);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0) + 32, 32);
    sim->run(fromUs(1));
    EXPECT_EQ(ctrl->ctrlStats().writeBursts.value(), 2.0);
    EXPECT_EQ(ctrl->ctrlStats().mergedWrBursts.value(), 1.0);
    EXPECT_EQ(ctrl->writeQueueSize(), 1u);
}

TEST_F(DramCtrlTest, DistinctBurstsDoNotMerge)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeLowThreshold = 0.5;
    build(cfg);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0, 0));
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0, 1));
    sim->run(fromUs(1));
    EXPECT_EQ(ctrl->ctrlStats().mergedWrBursts.value(), 0.0);
    EXPECT_EQ(ctrl->writeQueueSize(), 2u);
}

TEST_F(DramCtrlTest, MergedWriteCoverageForwardsWiderRead)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.frontendLatency = fromNs(10);
    cfg.writeLowThreshold = 0.5;
    build(cfg);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0), 32);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0) + 32, 32);
    // Read covering the whole merged burst is forwarded.
    auto rd = req->inject(fromNs(50), MemCmd::ReadReq, addrOf(0, 0), 64);
    sim->run(fromUs(1));
    EXPECT_EQ(req->responseTick(rd), fromNs(50) + fromNs(10));
    EXPECT_EQ(ctrl->ctrlStats().servicedByWrQ.value(), 1.0);
}

TEST_F(DramCtrlTest, PartiallyCoveredReadGoesToDram)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeLowThreshold = 0.5;
    build(cfg);
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0), 32);
    auto rd = req->inject(fromNs(50), MemCmd::ReadReq, addrOf(0, 0), 64);
    sim->run(fromUs(1));
    EXPECT_EQ(ctrl->ctrlStats().servicedByWrQ.value(), 0.0);
    // Served from the DRAM: latency includes the bank access.
    EXPECT_GE(req->responseTick(rd),
              fromNs(50) + fromNs(13.75 + 13.75 + 6));
}

TEST_F(DramCtrlTest, WritesParkBelowLowWatermark)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeBufferSize = 16;
    cfg.writeLowThreshold = 0.5; // 8 entries
    cfg.writeHighThreshold = 0.75;
    build(cfg);
    for (unsigned i = 0; i < 4; ++i)
        req->inject(0, MemCmd::WriteReq, addrOf(0, i));
    sim->run(fromUs(5));
    // Below the low watermark with no reads: kept on chip.
    EXPECT_EQ(ctrl->writeQueueSize(), 4u);
    EXPECT_EQ(ctrl->ctrlStats().bytesWritten.value(), 0.0);
}

TEST_F(DramCtrlTest, LowWatermarkTriggersIdleDrain)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeBufferSize = 16;
    cfg.writeLowThreshold = 0.25; // 4 entries
    cfg.minWritesPerSwitch = 2;
    build(cfg);
    for (unsigned i = 0; i < 4; ++i)
        req->inject(0, MemCmd::WriteReq, addrOf(0, i));
    sim->run(fromUs(5));
    // At the watermark with no reads pending: fully drained.
    EXPECT_EQ(ctrl->writeQueueSize(), 0u);
    EXPECT_EQ(ctrl->ctrlStats().bytesWritten.value(), 4 * 64.0);
}

TEST_F(DramCtrlTest, HighWatermarkForcesSwitchDespiteReads)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeBufferSize = 8;
    cfg.writeLowThreshold = 0.25;
    cfg.writeHighThreshold = 0.75; // 6 entries
    cfg.minWritesPerSwitch = 2;
    build(cfg);
    // A steady stream of reads, then a burst of writes over the
    // high watermark.
    for (unsigned i = 0; i < 16; ++i)
        req->inject(i * fromNs(6), MemCmd::ReadReq, addrOf(0, 0, i % 16));
    for (unsigned i = 0; i < 7; ++i)
        req->inject(fromNs(12), MemCmd::WriteReq, addrOf(1, i));
    sim->run(fromUs(50));
    EXPECT_TRUE(req->allResponded());
    // Writes were drained even though reads kept arriving; a residue
    // below the low watermark may stay parked on chip by design.
    EXPECT_GE(ctrl->ctrlStats().bytesWritten.value(), 6 * 64.0);
    EXPECT_LE(ctrl->writeQueueSize(), 1u);
    // The drain episode drained at least minWritesPerSwitch writes.
    EXPECT_GE(ctrl->ctrlStats().wrPerTurnAround.value(), 2.0);
}

TEST_F(DramCtrlTest, FrFcfsPrefersRowHitOverOlderConflict)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.schedPolicy = SchedPolicy::FrFcfs;
    build(cfg);
    // Open row 0 in bank 0, then queue a conflict (row 1) ahead of a
    // row hit (row 0).
    auto warm = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    // Both arrive at the same tick, the conflict first in queue order.
    auto conflict = req->inject(fromNs(40), MemCmd::ReadReq,
                                addrOf(0, 1));
    auto hit = req->inject(fromNs(40), MemCmd::ReadReq,
                           addrOf(0, 0, 1));
    sim->run(fromUs(10));
    (void)warm;
    // The younger row hit is serviced before the older conflict.
    EXPECT_LT(req->responseTick(hit), req->responseTick(conflict));
}

TEST_F(DramCtrlTest, FcfsServicesInArrivalOrder)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.schedPolicy = SchedPolicy::Fcfs;
    build(cfg);
    auto warm = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    auto conflict = req->inject(fromNs(40), MemCmd::ReadReq,
                                addrOf(0, 1));
    auto hit = req->inject(fromNs(40), MemCmd::ReadReq,
                           addrOf(0, 0, 1));
    sim->run(fromUs(10));
    (void)warm;
    // Strict order: the conflict goes first.
    EXPECT_GT(req->responseTick(hit), req->responseTick(conflict));
}

TEST_F(DramCtrlTest, FrFcfsRowHitStarvationCap)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.schedPolicy = SchedPolicy::FrFcfs;
    cfg.maxAccessesPerRow = 4;
    build(cfg);
    // A long run of row hits plus one conflict; the cap bounds how
    // long the conflict waits.
    auto conflict = req->inject(1, MemCmd::ReadReq, addrOf(0, 1));
    for (unsigned i = 0; i < 12; ++i)
        req->inject(0, MemCmd::ReadReq, addrOf(0, 0, i % 16));
    sim->run(fromUs(50));
    ASSERT_TRUE(req->allResponded());
    // The conflict must have been serviced before all 12 hits
    // completed (it would be last without the cap).
    unsigned after_conflict = 0;
    Tick conflict_tick = req->responseTick(conflict);
    for (const auto &r : req->responses()) {
        if (r.tick > conflict_tick)
            ++after_conflict;
    }
    EXPECT_GE(after_conflict, 1u);
}

TEST_F(DramCtrlTest, NarrowInterfaceChopsCacheLines)
{
    // LPDDR3: 32-byte bursts; a 64-byte line is two bursts
    // (Section II-A sub-cache-line handling).
    DRAMCtrlConfig cfg = presets::lpddr3_1600();
    cfg.timing.tREFI = 0;
    cfg.frontendLatency = 0;
    cfg.backendLatency = 0;
    build(cfg);
    ASSERT_EQ(cfg.org.burstSize(), 32u);
    auto id = req->inject(0, MemCmd::ReadReq, 0, 64);
    sim->run(fromUs(10));
    EXPECT_EQ(ctrl->ctrlStats().readBursts.value(), 2.0);
    // Sequential sub-accesses: second burst is a row hit.
    EXPECT_EQ(ctrl->ctrlStats().readRowHits.value(), 1.0);
    EXPECT_EQ(req->responseTick(id),
              fromNs(15 + 15 + 2 * 5)); // tRCD + tCL + 2 tBURST
}

TEST_F(DramCtrlTest, UnalignedRequestSpanningBursts)
{
    build(testutil::bareTimingConfig());
    // 64 bytes starting 32 bytes into a burst: touches two windows.
    auto id = req->inject(0, MemCmd::ReadReq, addrOf(0, 0) + 32, 64);
    sim->run(fromUs(10));
    EXPECT_TRUE(req->allResponded());
    (void)id;
    EXPECT_EQ(ctrl->ctrlStats().readBursts.value(), 2.0);
}

TEST_F(DramCtrlTest, PacketConservationUnderRandomLoad)
{
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    cfg.readBufferSize = 8;
    cfg.writeBufferSize = 8;
    cfg.minWritesPerSwitch = 4;
    build(cfg);

    Random rng(42);
    unsigned injected = 0;
    for (Tick t = 0; t < fromUs(3); t += rng.uniform(2000, 12000)) {
        bool is_read = rng.chance(0.6);
        Addr addr = rng.uniform(0, 1023) * 64;
        req->inject(t, is_read ? MemCmd::ReadReq : MemCmd::WriteReq,
                    addr);
        ++injected;
    }
    sim->run(fromUs(200));
    EXPECT_TRUE(req->allResponded());
    EXPECT_EQ(req->responses().size(), injected);
    EXPECT_TRUE(ctrl->idle() || ctrl->writeQueueSize() > 0);
}

TEST_F(DramCtrlTest, ReadResponsesArriveInIssueOrderPerBank)
{
    build(testutil::bareTimingConfig());
    std::vector<std::uint64_t> ids;
    for (unsigned i = 0; i < 6; ++i)
        ids.push_back(
            req->inject(0, MemCmd::ReadReq, addrOf(0, 0, i)));
    sim->run(fromUs(10));
    for (unsigned i = 1; i < ids.size(); ++i)
        EXPECT_GT(req->responseTick(ids[i]),
                  req->responseTick(ids[i - 1]));
}

TEST_F(DramCtrlTest, MisroutedPacketPanics)
{
    setThrowOnError(true);
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    sim = std::make_unique<Simulator>();
    // Controller only owns the second half of a window.
    ctrl = std::make_unique<DRAMCtrl>(
        *sim, "ctrl", cfg,
        AddrRange(cfg.org.channelCapacity, cfg.org.channelCapacity));
    req = std::make_unique<TestRequestor>(*sim, "req");
    req->port().bind(ctrl->port());
    req->inject(0, MemCmd::ReadReq, 0);
    EXPECT_THROW(sim->run(fromUs(1)), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DramCtrlTest, MismatchedRangeIsFatal)
{
    setThrowOnError(true);
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    sim = std::make_unique<Simulator>();
    EXPECT_THROW(DRAMCtrl(*sim, "ctrl", cfg, AddrRange(0, 4096)),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DramCtrlTest, ConfigValidationCatchesBadThresholds)
{
    setThrowOnError(true);
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeLowThreshold = 0.9;
    cfg.writeHighThreshold = 0.5;
    EXPECT_THROW(cfg.check(), std::runtime_error);

    cfg = testutil::bareTimingConfig();
    cfg.minWritesPerSwitch = 0;
    EXPECT_THROW(cfg.check(), std::runtime_error);

    cfg = testutil::bareTimingConfig();
    cfg.timing.activationLimit = 1;
    EXPECT_THROW(cfg.check(), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(DramCtrlTest, StatsResetStartsFreshWindow)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(1));
    EXPECT_GT(ctrl->ctrlStats().readBursts.value(), 0.0);
    sim->resetStats();
    EXPECT_EQ(ctrl->ctrlStats().readBursts.value(), 0.0);
    EXPECT_EQ(ctrl->statsWindowStart(), sim->curTick());
    // Utilisation over the new (empty) window.
    req->inject(sim->curTick() + 1, MemCmd::ReadReq, addrOf(1, 0));
    sim->run(sim->curTick() + fromUs(1));
    EXPECT_GT(ctrl->busUtilisation(), 0.0);
    EXPECT_LE(ctrl->busUtilisation(), 1.0);
}

TEST_F(DramCtrlTest, PerBankCountersMatchTraffic)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::ReadReq, addrOf(2, 0));
    req->inject(0, MemCmd::ReadReq, addrOf(2, 0, 1));
    req->inject(0, MemCmd::ReadReq, addrOf(5, 0));
    sim->run(fromUs(10));
    const auto &s = ctrl->ctrlStats();
    EXPECT_EQ(s.perBankRdBursts[2], 2.0);
    EXPECT_EQ(s.perBankRdBursts[5], 1.0);
    EXPECT_EQ(s.perBankRdBursts.total(), 3.0);
}

} // namespace
} // namespace dramctrl
