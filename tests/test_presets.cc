/**
 * @file
 * Tests pinning the DRAM presets to the paper's tables: Table IV's
 * per-technology numbers, the 12.8 GByte/s aggregate-bandwidth parity
 * of the Section IV-B case study, and the Section III validation
 * device.
 */

#include <gtest/gtest.h>

#include "dram/dram_presets.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace {

double
peakGBs(const DRAMCtrlConfig &cfg)
{
    return static_cast<double>(cfg.org.burstSize()) /
           toSeconds(cfg.timing.tBURST) / 1e9;
}

TEST(PresetTest, AllPresetsListedAndValid)
{
    auto names = presets::names();
    EXPECT_EQ(names.size(), 8u);
    for (const auto &name : names) {
        DRAMCtrlConfig cfg = presets::byName(name);
        cfg.check(); // must not fatal
    }
    // The standards layer's additions are registered.
    for (const char *name : {"ddr4_2400", "lpddr4_3200", "hbm2"}) {
        EXPECT_TRUE(presets::hasPreset(name)) << name;
    }
    EXPECT_FALSE(presets::hasPreset("ddr5_9000"));
    setThrowOnError(true);
    EXPECT_THROW(presets::byName("ddr5_9000"), std::runtime_error);
    setThrowOnError(false);
}

TEST(PresetTest, RegistryReplacesAndExtends)
{
    // Tools shadow builtins by re-registering a name; new names extend
    // the list. Use a throwaway name so other tests see the builtins.
    const std::size_t before = presets::names().size();
    presets::registerPreset("test_registry_probe", [] {
        DRAMCtrlConfig cfg = presets::ddr3_1600();
        cfg.readBufferSize = 7;
        return cfg;
    });
    EXPECT_EQ(presets::names().size(), before + 1);
    EXPECT_EQ(presets::byName("test_registry_probe").readBufferSize, 7u);
    presets::registerPreset("test_registry_probe", [] {
        DRAMCtrlConfig cfg = presets::ddr3_1600();
        cfg.readBufferSize = 9;
        return cfg;
    });
    // Replaced in place: no duplicate entry, new factory wins.
    EXPECT_EQ(presets::names().size(), before + 1);
    EXPECT_EQ(presets::byName("test_registry_probe").readBufferSize, 9u);
}

TEST(PresetTest, Ddr4BankGroupOrganisation)
{
    DRAMCtrlConfig cfg = presets::ddr4_2400();
    EXPECT_EQ(cfg.org.banksPerRank, 16u);
    EXPECT_EQ(cfg.org.bankGroupsPerRank, 4u);
    EXPECT_TRUE(cfg.org.hasBankGroups());
    EXPECT_EQ(cfg.org.banksPerGroup(), 4u);
    // Group-minor numbering: consecutive banks alternate groups.
    EXPECT_EQ(cfg.org.bankGroup(0), 0u);
    EXPECT_EQ(cfg.org.bankGroup(1), 1u);
    EXPECT_EQ(cfg.org.bankGroup(4), 0u);
    // Long timings dominate their short counterparts.
    EXPECT_GT(cfg.timing.tCCDLong(), cfg.timing.tCCDShort());
    EXPECT_GT(cfg.timing.tRRDLong(), cfg.timing.tRRD);
    // x8 devices ganged to a 64-bit channel, one cache line per burst.
    EXPECT_EQ(cfg.org.burstSize(), 64u);
}

TEST(PresetTest, Lpddr4SameBankRefresh)
{
    DRAMCtrlConfig cfg = presets::lpddr4_3200();
    EXPECT_FALSE(cfg.org.hasBankGroups());
    EXPECT_GT(cfg.timing.tRFCsb, 0u);
    EXPECT_LE(cfg.timing.tRFCsb, cfg.timing.tRFC);
    // BL16 on a x16 interface: 32-byte bursts like LPDDR3 x32.
    EXPECT_EQ(cfg.org.burstSize(), 32u);
}

TEST(PresetTest, Hbm2PseudoChannels)
{
    DRAMCtrlConfig cfg = presets::hbm2();
    EXPECT_EQ(cfg.org.pseudoChannels, 2u);
    EXPECT_TRUE(cfg.org.hasBankGroups());
    EXPECT_EQ(cfg.org.bankGroupsPerRank, 4u);
    // One pseudochannel: 64-bit interface, BL4 = 32-byte bursts.
    EXPECT_EQ(cfg.org.burstSize(), 32u);
    EXPECT_GT(cfg.timing.tRFCsb, 0u);
}

TEST(PresetTest, UngroupedTimingAccessorsInheritLegacyValues)
{
    // DDR3-era presets leave the group timings unset; the accessors
    // must degenerate to the classic values so behaviour is identical.
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    EXPECT_EQ(cfg.timing.tCCD_L, 0u);
    EXPECT_EQ(cfg.timing.tCCDLong(), cfg.timing.tBURST);
    EXPECT_EQ(cfg.timing.tCCDShort(), cfg.timing.tBURST);
    EXPECT_EQ(cfg.timing.tRRDLong(), cfg.timing.tRRD);
    EXPECT_EQ(cfg.timing.tRFCsb, 0u);
}

TEST(PresetTest, ValidationDeviceMatchesSectionIII)
{
    // "2 GBit, 8x8, 666 MHz" single rank, single channel.
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    EXPECT_EQ(cfg.org.deviceBusWidth, 8u);
    EXPECT_EQ(cfg.org.devicesPerRank, 8u);
    EXPECT_EQ(cfg.org.ranksPerChannel, 1u);
    EXPECT_EQ(cfg.timing.tCK, fromNs(1.5)); // 666 MHz
    // 64-byte bursts: one cache line per burst.
    EXPECT_EQ(cfg.org.burstSize(), 64u);
    EXPECT_NEAR(peakGBs(cfg), 64.0 / 6.0, 1e-9);
}

TEST(PresetTest, TableIVOrganisation)
{
    DRAMCtrlConfig ddr3 = presets::ddr3_1600();
    EXPECT_EQ(ddr3.org.deviceBusWidth * ddr3.org.devicesPerRank, 64u);
    EXPECT_EQ(ddr3.org.burstLength, 8u);
    EXPECT_EQ(ddr3.org.rowBufferSize, 1024u);
    EXPECT_EQ(ddr3.org.banksPerRank, 8u);

    DRAMCtrlConfig lp = presets::lpddr3_1600();
    EXPECT_EQ(lp.org.deviceBusWidth * lp.org.devicesPerRank, 32u);
    EXPECT_EQ(lp.org.burstLength, 8u);
    EXPECT_EQ(lp.org.rowBufferSize, 1024u);
    EXPECT_EQ(lp.org.banksPerRank, 8u);

    DRAMCtrlConfig wio = presets::wideio_200();
    EXPECT_EQ(wio.org.deviceBusWidth * wio.org.devicesPerRank, 128u);
    EXPECT_EQ(wio.org.burstLength, 4u);
    EXPECT_EQ(wio.org.rowBufferSize, 4096u);
    EXPECT_EQ(wio.org.banksPerRank, 4u);
}

TEST(PresetTest, TableIVTimings)
{
    DRAMCtrlConfig ddr3 = presets::ddr3_1600();
    EXPECT_EQ(ddr3.timing.tRCD, fromNs(13.75));
    EXPECT_EQ(ddr3.timing.tCL, fromNs(13.75));
    EXPECT_EQ(ddr3.timing.tRP, fromNs(13.75));
    EXPECT_EQ(ddr3.timing.tRAS, fromNs(35));
    EXPECT_EQ(ddr3.timing.tBURST, fromNs(5));
    EXPECT_EQ(ddr3.timing.tRFC, fromNs(300));
    EXPECT_EQ(ddr3.timing.tWTR, fromNs(7.5));
    EXPECT_EQ(ddr3.timing.tRRD, fromNs(6.25));
    EXPECT_EQ(ddr3.timing.tXAW, fromNs(40));
    EXPECT_EQ(ddr3.timing.activationLimit, 4u);

    DRAMCtrlConfig lp = presets::lpddr3_1600();
    EXPECT_EQ(lp.timing.tRCD, fromNs(15));
    EXPECT_EQ(lp.timing.tRAS, fromNs(42));
    EXPECT_EQ(lp.timing.tRFC, fromNs(130));
    EXPECT_EQ(lp.timing.tRRD, fromNs(10));
    EXPECT_EQ(lp.timing.tXAW, fromNs(50));

    DRAMCtrlConfig wio = presets::wideio_200();
    EXPECT_EQ(wio.timing.tRCD, fromNs(18));
    EXPECT_EQ(wio.timing.tBURST, fromNs(20));
    EXPECT_EQ(wio.timing.tRFC, fromNs(210));
    EXPECT_EQ(wio.timing.tWTR, fromNs(15));
    EXPECT_EQ(wio.timing.activationLimit, 2u); // tTAW
}

TEST(PresetTest, CaseStudyTechnologiesAllOffer12Point8GBs)
{
    // Section IV-B: DDR3 1x64, LPDDR3 2x32, WideIO 4x128, all
    // 12.8 GByte/s aggregate.
    EXPECT_NEAR(1 * peakGBs(presets::ddr3_1600()), 12.8, 0.01);
    EXPECT_NEAR(2 * peakGBs(presets::lpddr3_1600()), 12.8, 0.01);
    EXPECT_NEAR(4 * peakGBs(presets::wideio_200()), 12.8, 0.01);
}

TEST(PresetTest, BurstSizesMatchInterfaceWidths)
{
    // DDR3: 64 bit x BL8 = 64 B; LPDDR3: 32 bit x BL8 = 32 B (the
    // sub-cache-line case of Section II-A); WideIO: 128 bit x BL4 =
    // 64 B.
    EXPECT_EQ(presets::ddr3_1600().org.burstSize(), 64u);
    EXPECT_EQ(presets::lpddr3_1600().org.burstSize(), 32u);
    EXPECT_EQ(presets::wideio_200().org.burstSize(), 64u);
    EXPECT_EQ(presets::hmcVault().org.burstSize(), 32u);
}

TEST(PresetTest, RefreshIntervalsAreSane)
{
    for (const auto &name : presets::names()) {
        DRAMCtrlConfig cfg = presets::byName(name);
        // Refresh overhead tRFC/tREFI stays in the low single digits.
        EXPECT_GT(cfg.timing.tREFI, 10 * cfg.timing.tRFC) << name;
    }
}

} // namespace
} // namespace dramctrl
