/**
 * @file
 * Property-based sweeps (parameterised gtest) over the controller
 * configuration space: for every combination of model, address
 * mapping, page policy, scheduler and read/write mix, the invariants
 * that must hold regardless of configuration:
 *
 *  - every injected request is eventually answered (conservation),
 *  - bus utilisation and achieved bandwidth never exceed the peak,
 *  - read latency never beats the protocol floor,
 *  - row-hit rates stay in [0, 1],
 *  - no packets leak.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "mem/packet.hh"
#include "sim/logging.hh"
#include "trafficgen/random_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;
using harness::SingleChannelSystem;

using ParamTuple =
    std::tuple<CtrlModel, AddrMapping, PagePolicy, SchedPolicy,
               unsigned /* readPct */>;

class ControllerProperties
    : public ::testing::TestWithParam<ParamTuple>
{
  public:
    static std::string
    paramName(const ::testing::TestParamInfo<ParamTuple> &info)
    {
        const auto &[model, map, page, sched, pct] = info.param;
        return std::string(harness::toString(model)) + "_" +
               toString(map) + "_" + toString(page) + "_" +
               toString(sched) + "_rd" + std::to_string(pct);
    }
};

TEST_P(ControllerProperties, InvariantsHoldUnderRandomTraffic)
{
    const auto &[model, map, page, sched, pct] = GetParam();

    std::uint64_t live_before = Packet::liveCount();
    {
        DRAMCtrlConfig cfg = testutil::noRefreshConfig();
        cfg.addrMapping = map;
        cfg.pagePolicy = page;
        cfg.schedPolicy = sched;
        cfg.writeLowThreshold = 0.0; // drain fully so runs terminate
        cfg.minWritesPerSwitch = 4;

        SingleChannelSystem tb(cfg, model);

        GenConfig gc;
        gc.windowSize = 1 << 22;
        gc.blockSize = 64;
        gc.readPct = pct;
        gc.minITT = fromNs(3);
        gc.maxITT = fromNs(30);
        gc.numRequests = 600;
        gc.seed = 17;
        auto &gen = tb.addGen<RandomGen>(gc);

        tb.runToCompletion([&] { return gen.done(); });

        // Conservation.
        ASSERT_TRUE(gen.done());
        EXPECT_EQ(gen.genStats().recvResponses.value(), 600.0);

        // Bandwidth and utilisation bounds.
        EXPECT_GE(tb.ctrl().busUtilisation(), 0.0);
        EXPECT_LE(tb.ctrl().busUtilisation(), 1.0 + 1e-9);
        EXPECT_LE(tb.ctrl().achievedBandwidthGBs(),
                  tb.ctrl().peakBandwidthGBs() + 1e-9);

        // Latency floor: frontend + tCL + tBURST + backend.
        if (pct > 0) {
            Tick floor = cfg.frontendLatency + cfg.timing.tCL +
                         cfg.timing.tBURST + cfg.backendLatency;
            EXPECT_GE(gen.avgReadLatencyNs(), toNs(floor) - 1e-9);
        }

        // Power inputs are sane for any configuration.
        PowerInputs in = tb.ctrl().powerInputs();
        EXPECT_GE(in.readBusFraction, 0.0);
        EXPECT_LE(in.readBusFraction, 1.0 + 1e-9);
        EXPECT_GE(in.writeBusFraction, 0.0);
        EXPECT_LE(in.writeBusFraction, 1.0 + 1e-9);
        EXPECT_LE(toSeconds(in.prechargeAllTime),
                  toSeconds(in.window) + 1e-12);
    }
    // No packet leaked anywhere in the system.
    EXPECT_EQ(Packet::liveCount(), live_before);
}

// The cycle model supports only the non-adaptive page policies, so the
// cross-product is instantiated separately per model.
INSTANTIATE_TEST_SUITE_P(
    EventModel, ControllerProperties,
    ::testing::Combine(
        ::testing::Values(CtrlModel::Event),
        ::testing::Values(AddrMapping::RoRaBaCoCh,
                          AddrMapping::RoRaBaChCo,
                          AddrMapping::RoCoRaBaCh),
        ::testing::Values(PagePolicy::Open, PagePolicy::OpenAdaptive,
                          PagePolicy::Closed,
                          PagePolicy::ClosedAdaptive),
        ::testing::Values(SchedPolicy::Fcfs, SchedPolicy::FrFcfs,
                          SchedPolicy::FrFcfsPrio),
        ::testing::Values(100u, 50u, 0u)),
    ControllerProperties::paramName);

INSTANTIATE_TEST_SUITE_P(
    CycleModel, ControllerProperties,
    ::testing::Combine(
        ::testing::Values(CtrlModel::Cycle),
        ::testing::Values(AddrMapping::RoRaBaCoCh,
                          AddrMapping::RoCoRaBaCh),
        ::testing::Values(PagePolicy::Open, PagePolicy::Closed),
        ::testing::Values(SchedPolicy::FrFcfs),
        ::testing::Values(100u, 50u, 0u)),
    ControllerProperties::paramName);

/**
 * Low-power / multi-rank feature matrix: the same invariants must
 * hold with power-down, self-refresh and per-rank refresh engaged in
 * any combination, on a two-rank channel.
 */
struct FeatureCombo
{
    bool powerDown;
    bool selfRefresh;
    bool perRankRefresh;
};

class FeatureProperties
    : public ::testing::TestWithParam<FeatureCombo>
{
  public:
    static std::string
    paramName(const ::testing::TestParamInfo<FeatureCombo> &info)
    {
        const FeatureCombo &c = info.param;
        std::string s;
        s += c.powerDown ? "pd" : "nopd";
        s += c.selfRefresh ? "_sr" : "";
        s += c.perRankRefresh ? "_rankref" : "";
        return s;
    }
};

TEST_P(FeatureProperties, InvariantsHoldWithFeaturesEngaged)
{
    const FeatureCombo &combo = GetParam();
    std::uint64_t live_before = Packet::liveCount();
    {
        DRAMCtrlConfig cfg = testutil::noRefreshConfig();
        cfg.org.ranksPerChannel = 2;
        cfg.org.channelCapacity *= 2;
        cfg.timing.tREFI = fromUs(2);
        cfg.writeLowThreshold = 0.0;
        cfg.enablePowerDown = combo.powerDown;
        cfg.enableSelfRefresh = combo.selfRefresh;
        cfg.selfRefreshDelay = fromUs(3);
        cfg.perRankRefresh = combo.perRankRefresh;

        SingleChannelSystem tb(cfg, CtrlModel::Event);

        GenConfig gc;
        gc.windowSize = 1 << 22;
        gc.readPct = 60;
        gc.minITT = fromNs(5);
        gc.maxITT = fromUs(4); // long gaps: sleep states engage
        gc.numRequests = 300;
        gc.seed = 29;
        auto &gen = tb.addGen<RandomGen>(gc);
        tb.runToCompletion([&] { return gen.done(); },
                           fromUs(500000));

        ASSERT_TRUE(gen.done());
        EXPECT_EQ(gen.genStats().recvResponses.value(), 300.0);
        EXPECT_LE(tb.ctrl().busUtilisation(), 1.0 + 1e-9);

        PowerInputs in = tb.ctrl().powerInputs();
        EXPECT_LE(toSeconds(in.powerDownTime + in.selfRefreshTime),
                  toSeconds(in.window) + 1e-12);
        if (!combo.powerDown) {
            EXPECT_EQ(in.powerDownTime, 0u);
            EXPECT_EQ(in.selfRefreshTime, 0u);
        }
    }
    EXPECT_EQ(Packet::liveCount(), live_before);
}

INSTANTIATE_TEST_SUITE_P(
    LowPowerMatrix, FeatureProperties,
    ::testing::Values(FeatureCombo{false, false, false},
                      FeatureCombo{true, false, false},
                      FeatureCombo{true, true, false},
                      FeatureCombo{false, false, true},
                      FeatureCombo{true, false, true},
                      FeatureCombo{true, true, true}),
    FeatureProperties::paramName);

/** Per-preset sanity: every canned memory works end to end. */
class PresetProperties
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PresetProperties, PresetServesTraffic)
{
    DRAMCtrlConfig cfg = presets::byName(GetParam());
    cfg.writeLowThreshold = 0.0;
    SingleChannelSystem tb(cfg, CtrlModel::Event);

    GenConfig gc;
    gc.windowSize = 1 << 20;
    gc.blockSize = 64;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = cfg.timing.tBURST;
    gc.numRequests = 400;
    gc.seed = 23;
    auto &gen = tb.addGen<RandomGen>(gc);
    tb.runToCompletion([&] { return gen.done(); });

    EXPECT_TRUE(gen.done()) << GetParam();
    EXPECT_GT(tb.ctrl().busUtilisation(), 0.0);
    EXPECT_LE(tb.ctrl().busUtilisation(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetProperties,
                         ::testing::ValuesIn(presets::names()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace dramctrl
