/**
 * @file
 * Tests for the non-blocking cache: hits, misses, MSHR coalescing and
 * limits, LRU replacement, write-back of dirty victims, flow control,
 * and two-level hierarchies.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hh"
#include "dram/dram_ctrl.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.size = 1024; // 8 sets x 2 ways x 64 B
    cfg.assoc = 2;
    cfg.blockSize = 64;
    cfg.hitLatency = fromNs(1);
    cfg.mshrs = 2;
    cfg.targetsPerMshr = 2;
    return cfg;
}

class CacheTest : public ::testing::Test
{
  protected:
    void
    build(const CacheConfig &ccfg)
    {
        sim = std::make_unique<Simulator>();
        cache = std::make_unique<Cache>(*sim, "cache", ccfg);
        DRAMCtrlConfig mcfg = testutil::bareTimingConfig();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", mcfg, AddrRange(0, mcfg.org.channelCapacity));
        cache->memSidePort().bind(ctrl->port());
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(cache->cpuSidePort());
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Cache> cache;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(CacheTest, ColdMissThenHit)
{
    build(smallCache());
    auto miss = req->inject(0, MemCmd::ReadReq, 0x100, 8);
    auto hit = req->inject(fromUs(1), MemCmd::ReadReq, 0x108, 8);
    sim->run(fromUs(5));

    // The miss pays the DRAM round trip; the hit pays one lookup.
    EXPECT_GT(req->responseTick(miss), fromNs(30));
    EXPECT_EQ(req->responseTick(hit), fromUs(1) + fromNs(1));
    EXPECT_EQ(cache->cacheStats().misses.value(), 1.0);
    EXPECT_EQ(cache->cacheStats().hits.value(), 1.0);
    EXPECT_TRUE(cache->isCached(0x100));
}

TEST_F(CacheTest, MissesCoalesceOntoOneFill)
{
    build(smallCache());
    // Two requests to the same block before the fill returns.
    req->inject(0, MemCmd::ReadReq, 0x200, 8);
    req->inject(0, MemCmd::ReadReq, 0x220, 8);
    sim->run(fromUs(5));
    EXPECT_TRUE(req->allResponded());
    EXPECT_EQ(cache->cacheStats().misses.value(), 1.0);
    EXPECT_EQ(cache->cacheStats().mshrHits.value(), 1.0);
    // One fill read reached the DRAM.
    EXPECT_EQ(ctrl->ctrlStats().readReqs.value(), 1.0);
}

TEST_F(CacheTest, MshrTargetLimitBlocks)
{
    build(smallCache()); // 2 targets per MSHR
    req->inject(0, MemCmd::ReadReq, 0x200, 8);
    req->inject(0, MemCmd::ReadReq, 0x208, 8);
    req->inject(0, MemCmd::ReadReq, 0x210, 8); // third to same block
    sim->run(fromUs(5));
    EXPECT_TRUE(req->allResponded());
    EXPECT_GE(cache->cacheStats().blockedNoTarget.value(), 1.0);
    EXPECT_GE(req->retries(), 1u);
}

TEST_F(CacheTest, MshrCountLimitBlocks)
{
    build(smallCache()); // 2 MSHRs
    req->inject(0, MemCmd::ReadReq, 0x0, 8);
    req->inject(0, MemCmd::ReadReq, 0x1000, 8);
    req->inject(0, MemCmd::ReadReq, 0x2000, 8); // needs a third MSHR
    sim->run(fromUs(5));
    EXPECT_TRUE(req->allResponded());
    EXPECT_GE(cache->cacheStats().blockedNoMshr.value(), 1.0);
}

TEST_F(CacheTest, WriteAllocatesAndMarksDirty)
{
    build(smallCache());
    auto wr = req->inject(0, MemCmd::WriteReq, 0x300, 8);
    sim->run(fromUs(5));
    EXPECT_GT(req->responseTick(wr), 0u);
    EXPECT_TRUE(cache->isCached(0x300));
    EXPECT_TRUE(cache->isDirty(0x300));
    // Write-allocate: the fill was a read.
    EXPECT_EQ(ctrl->ctrlStats().readReqs.value(), 1.0);
    EXPECT_EQ(ctrl->ctrlStats().writeReqs.value(), 0.0);
}

TEST_F(CacheTest, DirtyVictimIsWrittenBack)
{
    build(smallCache()); // 8 sets: blocks 64*8 apart collide
    // Fill both ways of set 0 (addresses 0 and 0x200 map to set 0),
    // dirty one of them, then force an eviction with a third block.
    req->inject(0, MemCmd::WriteReq, 0x0, 8);
    req->inject(fromUs(1), MemCmd::ReadReq, 0x200, 8);
    req->inject(fromUs(2), MemCmd::ReadReq, 0x400, 8);
    sim->run(fromUs(10));
    EXPECT_TRUE(req->allResponded());
    EXPECT_EQ(cache->cacheStats().writebacks.value(), 1.0);
    EXPECT_EQ(ctrl->ctrlStats().writeReqs.value(), 1.0);
    EXPECT_FALSE(cache->isCached(0x0)); // LRU victim was the write
    EXPECT_TRUE(cache->isCached(0x400));
}

TEST_F(CacheTest, CleanVictimEvictsSilently)
{
    build(smallCache());
    req->inject(0, MemCmd::ReadReq, 0x0, 8);
    req->inject(fromUs(1), MemCmd::ReadReq, 0x200, 8);
    req->inject(fromUs(2), MemCmd::ReadReq, 0x400, 8);
    sim->run(fromUs(10));
    EXPECT_EQ(cache->cacheStats().writebacks.value(), 0.0);
    EXPECT_EQ(ctrl->ctrlStats().writeReqs.value(), 0.0);
}

TEST_F(CacheTest, LruKeepsRecentlyUsedBlock)
{
    build(smallCache());
    req->inject(0, MemCmd::ReadReq, 0x0, 8);
    req->inject(fromUs(1), MemCmd::ReadReq, 0x200, 8);
    // Touch 0x0 again so 0x200 becomes LRU.
    req->inject(fromUs(2), MemCmd::ReadReq, 0x0, 8);
    req->inject(fromUs(3), MemCmd::ReadReq, 0x400, 8);
    sim->run(fromUs(10));
    EXPECT_TRUE(cache->isCached(0x0));
    EXPECT_FALSE(cache->isCached(0x200));
}

TEST_F(CacheTest, MissRateFormula)
{
    build(smallCache());
    req->inject(0, MemCmd::ReadReq, 0x0, 8);
    req->inject(fromUs(1), MemCmd::ReadReq, 0x0, 8);
    req->inject(fromUs(1), MemCmd::ReadReq, 0x8, 8);
    sim->run(fromUs(10));
    EXPECT_NEAR(cache->cacheStats().missRate.value(), 1.0 / 3.0,
                1e-12);
    EXPECT_GT(cache->avgMissLatencyNs(), 0.0);
}

TEST_F(CacheTest, CrossBlockRequestPanics)
{
    setThrowOnError(true);
    build(smallCache());
    req->inject(0, MemCmd::ReadReq, 0x3c, 16); // crosses 0x40
    EXPECT_THROW(sim->run(fromUs(1)), std::runtime_error);
    setThrowOnError(false);
}

TEST_F(CacheTest, ConfigValidation)
{
    setThrowOnError(true);
    Simulator s;
    CacheConfig cfg = smallCache();
    cfg.blockSize = 48;
    EXPECT_THROW(Cache(s, "c1", cfg), std::runtime_error);

    cfg = smallCache();
    cfg.size = 1000; // not a whole number of sets
    EXPECT_THROW(Cache(s, "c2", cfg), std::runtime_error);

    cfg = smallCache();
    cfg.mshrs = 0;
    EXPECT_THROW(Cache(s, "c3", cfg), std::runtime_error);
    setThrowOnError(false);
}

TEST(CacheHierarchyTest, TwoLevelFillsBothLevels)
{
    Simulator sim;
    CacheConfig l1 = smallCache();
    CacheConfig l2 = smallCache();
    l2.size = 4096;
    l2.assoc = 4;
    l2.mshrs = 4;

    Cache l1c(sim, "l1", l1);
    Cache l2c(sim, "l2", l2);
    DRAMCtrlConfig mcfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", mcfg,
                  AddrRange(0, mcfg.org.channelCapacity));
    TestRequestor req(sim, "req");

    req.port().bind(l1c.cpuSidePort());
    l1c.memSidePort().bind(l2c.cpuSidePort());
    l2c.memSidePort().bind(ctrl.port());

    auto cold = req.inject(0, MemCmd::ReadReq, 0x1000, 8);
    auto warm = req.inject(fromUs(1), MemCmd::ReadReq, 0x1008, 8);
    sim.run(fromUs(10));

    EXPECT_TRUE(l1c.isCached(0x1000));
    EXPECT_TRUE(l2c.isCached(0x1000));
    EXPECT_EQ(ctrl.ctrlStats().readReqs.value(), 1.0);
    // L1 hit beats L1->L2 round trip which beats DRAM round trip.
    EXPECT_LT(req.responseTick(warm) - fromUs(1),
              req.responseTick(cold));
}

} // namespace
} // namespace dramctrl
