/**
 * @file
 * Cross-module integration tests: the two controller models fed the
 * same deterministic traffic must correlate (the essence of the
 * paper's Section III validation), multi-channel systems must conserve
 * traffic, and the event model must do far less work than the cycle
 * model for the same simulated interval (Section II-D / III-D).
 */

#include <gtest/gtest.h>

#include "cyclesim/cycle_ctrl.hh"
#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;
using harness::SingleChannelSystem;

struct RunResult
{
    double busUtil;
    double bandwidthGBs;
    double avgReadLatencyNs;
    double rowHitRate;
    /** Total kernel events serviced over the whole run. */
    std::uint64_t totalEvents;
};

/** Run one model against the DRAM-aware generator, saturating. */
RunResult
runModel(CtrlModel model, std::uint64_t stride, unsigned banks,
         unsigned read_pct, PagePolicy page)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.pagePolicy = page;
    cfg.addrMapping = page == PagePolicy::Open
                          ? AddrMapping::RoRaBaCoCh
                          : AddrMapping::RoCoRaBaCh;
    cfg.writeLowThreshold = 0.0;
    SingleChannelSystem tb(cfg, model);

    DramGenConfig gc;
    gc.org = cfg.org;
    gc.mapping = cfg.addrMapping;
    gc.strideBytes = stride;
    gc.numBanksTarget = banks;
    gc.readPct = read_pct;
    gc.minITT = gc.maxITT = fromNs(3); // oversubscribe
    gc.numRequests = 4000;
    gc.seed = 11;
    auto &gen = tb.addGen<DramGen>(gc);

    // Warm up, then measure a window.
    tb.sim().run(fromUs(5));
    tb.sim().resetStats();
    tb.runToCompletion([&] { return gen.done(); }, fromUs(2000));

    RunResult r;
    r.busUtil = tb.ctrl().busUtilisation();
    r.bandwidthGBs = tb.ctrl().achievedBandwidthGBs();
    r.avgReadLatencyNs = gen.avgReadLatencyNs();
    r.totalEvents = tb.sim().eventq().numEventsServiced();
    if (model == CtrlModel::Event) {
        r.rowHitRate = tb.eventCtrl().ctrlStats().rowHitRate.value();
    } else {
        auto &cc = dynamic_cast<cyclesim::CycleDRAMCtrl &>(tb.ctrl());
        r.rowHitRate = cc.ctrlStats().rowHitRate.value();
    }
    return r;
}

TEST(ModelCorrelationTest, OpenPageReadBandwidthMatches)
{
    // Fig. 3-style point: large stride, many banks, reads only.
    RunResult ev = runModel(CtrlModel::Event, 1024, 8, 100,
                            PagePolicy::Open);
    RunResult cy = runModel(CtrlModel::Cycle, 1024, 8, 100,
                            PagePolicy::Open);
    // Both near peak and within 10% of each other.
    EXPECT_GT(ev.busUtil, 0.8);
    EXPECT_GT(cy.busUtil, 0.7);
    EXPECT_NEAR(ev.busUtil, cy.busUtil, 0.1);
}

TEST(ModelCorrelationTest, LowHitRatePointAlsoMatches)
{
    RunResult ev = runModel(CtrlModel::Event, 64, 4, 100,
                            PagePolicy::Open);
    RunResult cy = runModel(CtrlModel::Cycle, 64, 4, 100,
                            PagePolicy::Open);
    EXPECT_NEAR(ev.busUtil, cy.busUtil, 0.12);
}

TEST(ModelCorrelationTest, EventModelWinsOnClosedPageWrites)
{
    // Fig. 5: the write-drain window lets the event model reschedule
    // writes; the cycle model trails at high bank counts.
    RunResult ev = runModel(CtrlModel::Event, 256, 4, 0,
                            PagePolicy::Closed);
    RunResult cy = runModel(CtrlModel::Cycle, 256, 4, 0,
                            PagePolicy::Closed);
    EXPECT_GE(ev.busUtil, cy.busUtil - 0.02);
}

TEST(ModelCorrelationTest, EventModelDoesFarLessWork)
{
    // Section II-D: for the same simulated traffic the cycle model
    // must service far more kernel events (one per DRAM clock while
    // busy) than the event model, which only wakes on state changes.
    RunResult ev = runModel(CtrlModel::Event, 512, 8, 100,
                            PagePolicy::Open);
    RunResult cy = runModel(CtrlModel::Cycle, 512, 8, 100,
                            PagePolicy::Open);
    EXPECT_LT(static_cast<double>(ev.totalEvents),
              0.6 * static_cast<double>(cy.totalEvents));
}

TEST(MultiChannelTest, FourChannelSystemConservesTraffic)
{
    std::uint64_t live_before = Packet::liveCount();
    {
        Simulator sim;
        DRAMCtrlConfig cfg = testutil::noRefreshConfig();
        Crossbar xbar(sim, "xbar", XBarConfig{});
        auto ranges = interleavedRanges(
            0, 4 * cfg.org.channelCapacity, 64, 4);
        std::vector<std::unique_ptr<DRAMCtrl>> ctrls;
        for (unsigned ch = 0; ch < 4; ++ch) {
            ctrls.push_back(std::make_unique<DRAMCtrl>(
                sim, "ctrl" + std::to_string(ch), cfg, ranges[ch]));
            xbar.memSidePort(xbar.addMemSidePort(ranges[ch]))
                .bind(ctrls.back()->port());
        }

        GenConfig gc;
        gc.windowSize = 1 << 24;
        gc.readPct = 60;
        gc.minITT = gc.maxITT = fromNs(2);
        gc.numRequests = 2000;
        gc.seed = 31;
        RandomGen gen(sim, "gen", gc, 0);
        gen.port().bind(xbar.cpuSidePort(xbar.addCpuSidePort()));

        harness::runUntil(sim, [&] { return gen.done(); });
        ASSERT_TRUE(gen.done());
        EXPECT_EQ(gen.genStats().recvResponses.value(), 2000.0);

        // The interleaving spread requests over all four channels.
        double total_reqs = 0;
        for (const auto &c : ctrls) {
            double reqs = c->ctrlStats().readReqs.value() +
                          c->ctrlStats().writeReqs.value();
            EXPECT_GT(reqs, 0.0);
            total_reqs += reqs;
        }
        EXPECT_EQ(total_reqs, 2000.0);
    }
    EXPECT_EQ(Packet::liveCount(), live_before);
}

TEST(MultiChannelTest, SixteenChannelHmcStyleSystemWorks)
{
    // Section II-F: an HMC model is "only a matter of combining the
    // crossbar model with 16 instances of our controller model".
    Simulator sim;
    DRAMCtrlConfig cfg = presets::hmcVault();
    cfg.timing.tREFI = 0;
    Crossbar xbar(sim, "xbar", XBarConfig{});
    auto ranges =
        interleavedRanges(0, 16 * cfg.org.channelCapacity, 256, 16);
    std::vector<std::unique_ptr<DRAMCtrl>> vaults;
    for (unsigned ch = 0; ch < 16; ++ch) {
        vaults.push_back(std::make_unique<DRAMCtrl>(
            sim, "vault" + std::to_string(ch), cfg, ranges[ch]));
        xbar.memSidePort(xbar.addMemSidePort(ranges[ch]))
            .bind(vaults.back()->port());
    }

    GenConfig gc;
    gc.windowSize = 1 << 26;
    gc.readPct = 70;
    gc.blockSize = 32;
    gc.minITT = gc.maxITT = fromNs(1);
    gc.numRequests = 4000;
    gc.seed = 41;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(xbar.cpuSidePort(xbar.addCpuSidePort()));

    harness::runUntil(sim, [&] { return gen.done(); });
    ASSERT_TRUE(gen.done());

    unsigned active_vaults = 0;
    for (const auto &v : vaults) {
        if (v->ctrlStats().readReqs.value() > 0)
            ++active_vaults;
    }
    EXPECT_EQ(active_vaults, 16u);
}

TEST(LatencyShapeTest, WriteDrainMakesEventModelReadLatencyBimodal)
{
    // Fig. 7's mechanism: mixed linear traffic under a closed page.
    // The event model delays some reads behind write drains; the
    // cycle model services in order and stays unimodal.
    auto run = [](CtrlModel model) {
        DRAMCtrlConfig cfg = presets::ddr3_1333();
        cfg.pagePolicy = PagePolicy::Closed;
        cfg.addrMapping = AddrMapping::RoCoRaBaCh;
        SingleChannelSystem tb(cfg, model);
        GenConfig gc;
        gc.windowSize = 1 << 22;
        gc.readPct = 50;
        gc.minITT = gc.maxITT = fromNs(12);
        gc.numRequests = 4000;
        gc.seed = 57;
        auto &gen = tb.addGen<LinearGen>(gc);
        tb.runToCompletion([&] { return gen.done(); },
                           fromUs(5000));
        EXPECT_TRUE(gen.done());
        return gen.genStats().readLatencyHist.numModes(0.02);
    };

    EXPECT_GE(run(CtrlModel::Event), 2u);
    EXPECT_LE(run(CtrlModel::Cycle), 2u);
}

TEST(LatencyShapeTest, AverageLatenciesWithinBand)
{
    // Section III-C2: distributions differ in shape but averages stay
    // close. Allow a generous band (the models differ by design).
    auto avg = [](CtrlModel model) {
        DRAMCtrlConfig cfg = presets::ddr3_1333();
        SingleChannelSystem tb(cfg, model);
        GenConfig gc;
        gc.windowSize = 1 << 22;
        gc.readPct = 100;
        gc.minITT = gc.maxITT = fromNs(15);
        gc.numRequests = 3000;
        gc.seed = 61;
        auto &gen = tb.addGen<LinearGen>(gc);
        tb.runToCompletion([&] { return gen.done(); },
                           fromUs(5000));
        return gen.avgReadLatencyNs();
    };
    double ev = avg(CtrlModel::Event);
    double cy = avg(CtrlModel::Cycle);
    EXPECT_NEAR(ev, cy, 0.25 * std::max(ev, cy));
}

} // namespace
} // namespace dramctrl
