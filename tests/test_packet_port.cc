/**
 * @file
 * Unit tests for the transaction layer: packet lifecycle, sender-state
 * stack, the port retry protocol, and the time-ordered response queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace {

TEST(PacketTest, CommandPredicates)
{
    Packet rd(MemCmd::ReadReq, 0x40, 64, 1);
    EXPECT_TRUE(rd.isRead());
    EXPECT_TRUE(rd.isRequest());
    EXPECT_FALSE(rd.isWrite());
    EXPECT_FALSE(rd.isResponse());

    rd.makeResponse();
    EXPECT_EQ(rd.cmd(), MemCmd::ReadResp);
    EXPECT_TRUE(rd.isRead());
    EXPECT_TRUE(rd.isResponse());

    Packet wr(MemCmd::WriteReq, 0x80, 32, 2);
    wr.makeResponse();
    EXPECT_EQ(wr.cmd(), MemCmd::WriteResp);
}

TEST(PacketTest, MakeResponseOnResponsePanics)
{
    setThrowOnError(true);
    Packet p(MemCmd::ReadReq, 0, 64, 0);
    p.makeResponse();
    EXPECT_THROW(p.makeResponse(), std::runtime_error);
    setThrowOnError(false);
}

TEST(PacketTest, UniqueIds)
{
    Packet a(MemCmd::ReadReq, 0, 64, 0);
    Packet b(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_NE(a.id(), b.id());
}

TEST(PacketTest, SpanPredicates)
{
    Packet p(MemCmd::ReadReq, 100, 20, 0);
    EXPECT_EQ(p.endAddr(), 120u);
    EXPECT_TRUE(p.isContainedIn(100, 20));
    EXPECT_TRUE(p.isContainedIn(96, 32));
    EXPECT_FALSE(p.isContainedIn(104, 32));
    EXPECT_TRUE(p.overlaps(110, 5));
    EXPECT_TRUE(p.overlaps(90, 11));
    EXPECT_FALSE(p.overlaps(120, 10));
    EXPECT_FALSE(p.overlaps(90, 10));
}

TEST(PacketTest, SenderStateStack)
{
    struct State : Packet::SenderState
    {
        int tag;
        explicit State(int t) : tag(t) {}
    };

    Packet p(MemCmd::ReadReq, 0, 64, 0);
    auto *s1 = new State(1);
    auto *s2 = new State(2);
    p.pushSenderState(s1);
    p.pushSenderState(s2);

    auto *top = static_cast<State *>(p.popSenderState());
    EXPECT_EQ(top->tag, 2);
    delete top;
    top = static_cast<State *>(p.popSenderState());
    EXPECT_EQ(top->tag, 1);
    delete top;
    EXPECT_EQ(p.senderState(), nullptr);
}

TEST(PacketTest, PopEmptySenderStatePanics)
{
    setThrowOnError(true);
    Packet p(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_THROW(p.popSenderState(), std::runtime_error);
    setThrowOnError(false);
}

TEST(PacketTest, LiveCountTracksAllocation)
{
    std::uint64_t before = Packet::liveCount();
    {
        Packet p(MemCmd::ReadReq, 0, 64, 0);
        EXPECT_EQ(Packet::liveCount(), before + 1);
    }
    EXPECT_EQ(Packet::liveCount(), before);
}

/** Scriptable responder used to exercise the retry protocol. */
class StubResponder : public ResponsePort
{
  public:
    explicit StubResponder(std::string name)
        : ResponsePort(std::move(name))
    {}

    bool acceptRequests = true;
    std::vector<Packet *> received;
    int respRetries = 0;

    bool
    recvTimingReq(Packet *pkt) override
    {
        if (!acceptRequests)
            return false;
        received.push_back(pkt);
        return true;
    }

    void recvRespRetry() override { ++respRetries; }
};

class StubRequestor : public RequestPort
{
  public:
    explicit StubRequestor(std::string name)
        : RequestPort(std::move(name))
    {}

    bool acceptResponses = true;
    std::vector<Packet *> received;
    int reqRetries = 0;

    bool
    recvTimingResp(Packet *pkt) override
    {
        if (!acceptResponses)
            return false;
        received.push_back(pkt);
        return true;
    }

    void recvReqRetry() override { ++reqRetries; }
};

TEST(PortTest, BindConnectsBothDirections)
{
    StubRequestor req("req");
    StubResponder resp("resp");
    req.bind(resp);
    EXPECT_TRUE(req.isBound());
    EXPECT_TRUE(resp.isBound());

    Packet p(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_TRUE(req.sendTimingReq(&p));
    ASSERT_EQ(resp.received.size(), 1u);
    EXPECT_EQ(resp.received[0], &p);

    p.makeResponse();
    EXPECT_TRUE(resp.sendTimingResp(&p));
    ASSERT_EQ(req.received.size(), 1u);
}

TEST(PortTest, RefusalAndRetrySignalling)
{
    StubRequestor req("req");
    StubResponder resp("resp");
    req.bind(resp);

    resp.acceptRequests = false;
    Packet p(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_FALSE(req.sendTimingReq(&p));
    resp.sendReqRetry();
    EXPECT_EQ(req.reqRetries, 1);

    req.acceptResponses = false;
    p.makeResponse();
    EXPECT_FALSE(resp.sendTimingResp(&p));
    req.sendRespRetry();
    EXPECT_EQ(resp.respRetries, 1);
}

TEST(PortTest, DoubleBindIsFatal)
{
    setThrowOnError(true);
    StubRequestor req("req");
    StubResponder resp("resp");
    req.bind(resp);
    StubResponder other("other");
    EXPECT_THROW(req.bind(other), std::runtime_error);
    setThrowOnError(false);
}

TEST(PortTest, UnboundSendPanics)
{
    setThrowOnError(true);
    StubRequestor req("req");
    Packet p(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_THROW(req.sendTimingReq(&p), std::runtime_error);
    setThrowOnError(false);
}

TEST(RespPacketQueueTest, DeliversInTimeOrder)
{
    Simulator sim;
    StubRequestor req("req");
    StubResponder resp("resp"); // unused side
    (void)resp;

    // A minimal responder port for the queue to send through.
    class QueuePort : public ResponsePort
    {
      public:
        using ResponsePort::ResponsePort;
        bool recvTimingReq(Packet *) override { return true; }
        void recvRespRetry() override {}
    };

    QueuePort qport("qport");
    req.bind(qport);
    RespPacketQueue queue(sim.eventq(), qport, "queue");

    auto *a = new Packet(MemCmd::ReadReq, 0, 64, 0);
    auto *b = new Packet(MemCmd::ReadReq, 64, 64, 0);
    a->makeResponse();
    b->makeResponse();

    // Pushed out of order; must be delivered in tick order.
    queue.schedSendResp(b, 200);
    queue.schedSendResp(a, 100);

    sim.run(1000);
    ASSERT_EQ(req.received.size(), 2u);
    EXPECT_EQ(req.received[0], a);
    EXPECT_EQ(req.received[1], b);
    delete a;
    delete b;
}

TEST(RespPacketQueueTest, StallsOnRefusalAndResumesOnRetry)
{
    Simulator sim;
    StubRequestor req("req");

    class QueuePort : public ResponsePort
    {
      public:
        RespPacketQueue *queue = nullptr;
        using ResponsePort::ResponsePort;
        bool recvTimingReq(Packet *) override { return true; }
        void recvRespRetry() override { queue->retry(); }
    };

    QueuePort qport("qport");
    req.bind(qport);
    RespPacketQueue queue(sim.eventq(), qport, "queue");
    qport.queue = &queue;

    auto *a = new Packet(MemCmd::ReadReq, 0, 64, 0);
    a->makeResponse();

    req.acceptResponses = false;
    queue.schedSendResp(a, 50);
    sim.run(100);
    EXPECT_TRUE(req.received.empty());
    EXPECT_FALSE(queue.empty());

    req.acceptResponses = true;
    req.sendRespRetry();
    ASSERT_EQ(req.received.size(), 1u);
    EXPECT_TRUE(queue.empty());
    delete a;
}

} // namespace
} // namespace dramctrl
