/**
 * @file
 * Unit tests for the cycle-based comparator's building blocks:
 * CycleTiming quantisation, per-bank/rank state transitions, and the
 * bounded per-bank command queues.
 */

#include <gtest/gtest.h>

#include "cyclesim/bank_state.hh"
#include "cyclesim/command_queue.hh"
#include "dram/dram_presets.hh"
#include "sim/logging.hh"

namespace dramctrl {
namespace {

using namespace cyclesim;

DRAMTiming
ddr3Timing()
{
    return presets::ddr3_1333().timing;
}

TEST(CycleTimingTest, QuantisesUpward)
{
    CycleTiming ct(ddr3Timing());
    // tRCD 13.75 ns at tCK 1.5 ns -> ceil = 10 cycles.
    EXPECT_EQ(ct.tRCD, 10u);
    EXPECT_EQ(ct.tCL, 10u);
    EXPECT_EQ(ct.tRP, 10u);
    // tRAS 35 ns -> 24 cycles; tRC = tRAS + tRP.
    EXPECT_EQ(ct.tRAS, 24u);
    EXPECT_EQ(ct.tRC, 34u);
    // tBURST 6 ns -> 4 cycles.
    EXPECT_EQ(ct.burstCycles, 4u);
    // Quantised values never undershoot the analog time.
    EXPECT_GE(ct.tRCD * fromNs(1.5), fromNs(13.75));
    EXPECT_GE(ct.tXAW * fromNs(1.5), fromNs(30));
}

TEST(CycleBankStateTest, ActivateSetsTimers)
{
    CycleTiming ct(ddr3Timing());
    CycleBankState bank;
    EXPECT_FALSE(bank.rowOpen());
    bank.activate(100, 7, ct);
    EXPECT_TRUE(bank.rowOpen());
    EXPECT_EQ(bank.openRow, 7u);
    EXPECT_EQ(bank.nextRead, 100 + ct.tRCD);
    EXPECT_EQ(bank.nextWrite, 100 + ct.tRCD);
    EXPECT_EQ(bank.nextPrecharge, 100 + ct.tRAS);
    EXPECT_EQ(bank.nextActivate, 100 + ct.tRC);
}

TEST(CycleBankStateTest, PrechargeClosesAndSetsTrp)
{
    CycleTiming ct(ddr3Timing());
    CycleBankState bank;
    bank.activate(0, 3, ct);
    bank.precharge(50, ct);
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_GE(bank.nextActivate, 50 + ct.tRP);
}

TEST(CycleRankStateTest, TrrdGatesActivates)
{
    CycleTiming ct(ddr3Timing());
    CycleRankState rank;
    EXPECT_TRUE(rank.canActivate(0, ct));
    rank.recordActivate(0, ct);
    EXPECT_FALSE(rank.canActivate(ct.tRRD - 1, ct));
    EXPECT_TRUE(rank.canActivate(ct.tRRD, ct));
}

TEST(CycleRankStateTest, ActivationWindowGatesFifth)
{
    CycleTiming ct(ddr3Timing());
    CycleRankState rank;
    Cycle c = 0;
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_TRUE(rank.canActivate(c, ct));
        rank.recordActivate(c, ct);
        c += ct.tRRD;
    }
    // Fifth activate: blocked until the window slides past the first.
    EXPECT_FALSE(rank.canActivate(c, ct));
    EXPECT_TRUE(rank.canActivate(ct.tXAW, ct));
}

TEST(CommandQueueTest, SpaceAccounting)
{
    CommandQueue q(1, 2, 3);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.hasSpace(0, 0, 3));
    EXPECT_FALSE(q.hasSpace(0, 0, 4));
    for (unsigned i = 0; i < 3; ++i)
        q.push(Command{CmdType::Act, 0, 0, i, 0, false, nullptr});
    EXPECT_FALSE(q.hasSpace(0, 0, 1));
    EXPECT_TRUE(q.hasSpace(0, 1, 3)); // other bank unaffected
    EXPECT_EQ(q.totalSize(), 3u);
    EXPECT_FALSE(q.empty());
}

TEST(CommandQueueTest, PerBankFifoOrder)
{
    CommandQueue q(1, 1, 4);
    q.push(Command{CmdType::Act, 0, 0, 1, 0, false, nullptr});
    q.push(Command{CmdType::Read, 0, 0, 1, 5, false, nullptr});
    auto &bank_q = q.at(0, 0);
    EXPECT_EQ(bank_q.front().type, CmdType::Act);
    bank_q.pop_front();
    EXPECT_EQ(bank_q.front().type, CmdType::Read);
    EXPECT_EQ(bank_q.front().col, 5u);
}

TEST(CommandQueueTest, OverflowPanicsAndZeroDepthFatal)
{
    setThrowOnError(true);
    CommandQueue q(1, 1, 1);
    q.push(Command{CmdType::Act, 0, 0, 0, 0, false, nullptr});
    EXPECT_THROW(
        q.push(Command{CmdType::Pre, 0, 0, 0, 0, false, nullptr}),
        std::runtime_error);
    EXPECT_THROW(CommandQueue(1, 1, 0), std::runtime_error);
    setThrowOnError(false);
}

TEST(CommandQueueTest, RankBankIndexing)
{
    CommandQueue q(2, 4, 2);
    q.push(Command{CmdType::Act, 1, 3, 9, 0, false, nullptr});
    EXPECT_TRUE(q.at(0, 3).empty());
    EXPECT_FALSE(q.at(1, 3).empty());
    EXPECT_EQ(q.at(1, 3).front().row, 9u);
}

} // namespace
} // namespace dramctrl
