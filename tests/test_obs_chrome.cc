/**
 * @file
 * Chrome trace-event exporter tests: span/instant/counter recording,
 * well-formedness of the emitted JSON (parsed back structurally),
 * command-log import, the event cap, and packet lifecycle spans from a
 * live controller run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/dram_ctrl.hh"
#include "obs/chrome_trace.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

/** Balanced braces/brackets and quotes outside of strings. */
bool
structurallyValidJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
          case '[': ++depth; break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            break;
          default: break;
        }
    }
    return depth == 0 && !in_string;
}

/** Installs a writer as the global tracer, restores on destruction. */
class ScopedTracer
{
  public:
    explicit ScopedTracer(obs::ChromeTraceWriter &w)
        : prev_(obs::chromeTracer())
    {
        obs::setChromeTracer(&w);
    }

    ~ScopedTracer() { obs::setChromeTracer(prev_); }

  private:
    obs::ChromeTraceWriter *prev_;
};

TEST(ChromeTraceTest, SpanLifecycle)
{
    obs::ChromeTraceWriter w;
    w.beginSpan("ctrl", 1, "read 64", 1000);
    EXPECT_TRUE(w.spanOpen(1));
    w.endSpan(1, 5000);
    EXPECT_FALSE(w.spanOpen(1));
    EXPECT_EQ(w.numEvents(), 2u);
}

TEST(ChromeTraceTest, UnmatchedEndIgnored)
{
    obs::ChromeTraceWriter w;
    w.endSpan(99, 1000);
    EXPECT_EQ(w.numEvents(), 0u);
}

TEST(ChromeTraceTest, DuplicateBeginKeepsFirst)
{
    obs::ChromeTraceWriter w;
    w.beginSpan("ctrl", 7, "first", 100);
    w.beginSpan("ctrl", 7, "second", 200);
    EXPECT_EQ(w.numEvents(), 1u);
    std::ostringstream os;
    w.write(os);
    EXPECT_NE(os.str().find("\"first\""), std::string::npos);
    EXPECT_EQ(os.str().find("\"second\""), std::string::npos);
}

TEST(ChromeTraceTest, WellFormedJsonWithAllEventKinds)
{
    obs::ChromeTraceWriter w;
    w.beginSpan("mem_ctrl", 11, "read 4096", 2500000);
    w.instant("xbar", "req port 0 -> mem 1", 2600000);
    w.counter("mem_ctrl", "readQ", 2700000, 3.0);
    w.endSpan(11, 9500000);

    std::ostringstream os;
    w.write(os);
    std::string out = os.str();

    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"displayTimeUnit\": \"ns\""),
              std::string::npos);
    EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
    // Metadata names the process and both tracks.
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("{\"name\": \"mem_ctrl\"}"), std::string::npos);
    EXPECT_NE(out.find("{\"name\": \"xbar\"}"), std::string::npos);
    // Span pair keyed by the packet id with the async category.
    EXPECT_NE(out.find("\"ph\": \"b\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\": \"e\""), std::string::npos);
    EXPECT_NE(out.find("\"cat\": \"pkt\", \"id\": 11"),
              std::string::npos);
    // Tick 2500000 ps is exactly 2.5 us.
    EXPECT_NE(out.find("\"ts\": 2.500000"), std::string::npos) << out;
    // Counter carries its series value.
    EXPECT_NE(out.find("{\"readQ\": 3}"), std::string::npos) << out;
}

TEST(ChromeTraceTest, EventCapDropsButNeverDropsEnds)
{
    obs::ChromeTraceWriter w;
    w.setMaxEvents(2);
    w.beginSpan("t", 1, "kept", 0);
    w.instant("t", "kept too", 1);
    w.instant("t", "dropped", 2);
    EXPECT_EQ(w.numEvents(), 2u);
    EXPECT_EQ(w.droppedEvents(), 1u);

    // The open span must still close.
    w.endSpan(1, 3);
    EXPECT_EQ(w.numEvents(), 3u);
    EXPECT_FALSE(w.spanOpen(1));
}

TEST(ChromeTraceTest, ImportCmdLogMakesPerRankTracks)
{
    CmdLogger log;
    log.record(100, DRAMCmd::Act, 0, 2, 77);
    log.record(200, DRAMCmd::Rd, 0, 2);
    log.record(300, DRAMCmd::Ref, 1, 0);

    obs::ChromeTraceWriter w;
    w.importCmdLog(log.log(), "mem_ctrl");
    EXPECT_EQ(w.numEvents(), 3u);

    std::ostringstream os;
    w.write(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("{\"name\": \"mem_ctrl.rank0\"}"),
              std::string::npos);
    EXPECT_NE(out.find("{\"name\": \"mem_ctrl.rank1\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"ACT b2 r77\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"RD b2\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"REF\""), std::string::npos) << out;
}

TEST(ChromeTraceTest, LiveRunRecordsReadAndWriteSpans)
{
    obs::ChromeTraceWriter w;
    ScopedTracer guard(w);

    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    std::uint64_t rd = req.inject(0, MemCmd::ReadReq, 0);
    std::uint64_t wr = req.inject(0, MemCmd::WriteReq, 4096);
    sim.run(fromUs(10));
    ASSERT_TRUE(req.allResponded());

    // Both packets opened a span at the controller and closed it when
    // the response left the response queue.
    EXPECT_FALSE(w.spanOpen(rd));
    EXPECT_FALSE(w.spanOpen(wr));

    std::ostringstream os;
    w.write(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    EXPECT_NE(out.find("\"read 0\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"write 4096\""), std::string::npos) << out;
    // Queue-depth counters rode along.
    EXPECT_NE(out.find("\"readQ\""), std::string::npos) << out;

    // The span pairs really are in the stream: a begin and an end for
    // each packet id.
    EXPECT_NE(out.find("\"id\": " + std::to_string(rd)),
              std::string::npos);
    EXPECT_NE(out.find("\"id\": " + std::to_string(wr)),
              std::string::npos);
}

TEST(ChromeTraceTest, HostileNamesAreJsonEscaped)
{
    // Config-derived names can carry quotes, backslashes and control
    // characters (a hostile preset name); the trace must stay valid
    // JSON regardless.
    obs::ChromeTraceWriter w;
    const std::string evil = "pre\"set\\na\nme\ttab";
    w.beginSpan(evil, 1, "read \"0x0\"", 100);
    w.instant(evil, "inst\\ant", 200);
    w.counter(evil, "dep\"th", 300, 1.0);
    w.endSpan(1, 400);

    std::ostringstream os;
    w.write(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    // The escaped forms are present; no raw control char survives.
    EXPECT_NE(out.find("pre\\\"set\\\\na\\nme\\ttab"),
              std::string::npos)
        << out;
    EXPECT_EQ(out.find('\t'), std::string::npos);
    for (char c : out)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
            << "raw control char in trace";
}

TEST(ChromeTraceTest, LiveRunEmitsUtilisationCounters)
{
    obs::ChromeTraceWriter w;
    ScopedTracer guard(w);

    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    // Two different rows of one bank: an ACT, a PRE and another ACT.
    req.inject(0, MemCmd::ReadReq, 0);
    req.inject(0, MemCmd::ReadReq, 1 << 16);
    sim.run(fromUs(10));
    ASSERT_TRUE(req.allResponded());

    std::ostringstream os;
    w.write(os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValidJson(out)) << out;
    // Data-bus utilisation toggles 0/1 around each burst.
    EXPECT_NE(out.find("\"busBusy\""), std::string::npos) << out;
    // Open-row population and the per-bank state series.
    EXPECT_NE(out.find("\"openBanks\""), std::string::npos) << out;
    EXPECT_NE(out.find("{\"name\": \"mem_ctrl.banks\"}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"bank0\""), std::string::npos) << out;
}

TEST(ChromeTraceTest, GlobalTracerInstallAndDetach)
{
    EXPECT_EQ(obs::chromeTracer(), nullptr);
    {
        obs::ChromeTraceWriter w;
        ScopedTracer guard(w);
        EXPECT_EQ(obs::chromeTracer(), &w);
    }
    EXPECT_EQ(obs::chromeTracer(), nullptr);
}

} // namespace
} // namespace dramctrl
