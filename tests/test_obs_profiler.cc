/**
 * @file
 * Event-queue profiler tests: per-name counts, agreement with the
 * queue's own serviced-event counter, per-type aggregation across
 * instances, report formatting, and reset.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/event_profiler.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace {

using obs::EventProfiler;

TEST(EventProfilerTest, CountsEveryServicedEvent)
{
    Simulator sim;
    EventProfiler prof;
    sim.eventq().setProfiler(&prof);

    unsigned fired = 0;
    EventFunctionWrapper a([&] { ++fired; }, "obj0.tickEvent");
    EventFunctionWrapper b([&] { ++fired; }, "obj0.sendEvent");
    sim.eventq().schedule(a, 10);
    sim.eventq().schedule(b, 20);
    std::uint64_t before = sim.eventq().numEventsServiced();
    sim.run(fromNs(1));

    EXPECT_EQ(fired, 2u);
    EXPECT_EQ(prof.totalEvents(),
              sim.eventq().numEventsServiced() - before);
    ASSERT_EQ(prof.byName().count("obj0.tickEvent"), 1u);
    EXPECT_EQ(prof.byName().at("obj0.tickEvent").count, 1u);
    EXPECT_EQ(prof.byName().at("obj0.sendEvent").count, 1u);
    EXPECT_GE(prof.totalHostSeconds(), 0.0);

    sim.eventq().setProfiler(nullptr);
}

TEST(EventProfilerTest, DetachedProfilerSeesNothing)
{
    Simulator sim;
    EventProfiler prof;
    EventFunctionWrapper a([] {}, "ev");
    sim.eventq().schedule(a, 10);
    sim.run(fromNs(1));
    EXPECT_EQ(prof.totalEvents(), 0u);
}

TEST(EventProfilerTest, RepeatingEventAccumulates)
{
    Simulator sim;
    EventProfiler prof;
    sim.eventq().setProfiler(&prof);

    unsigned remaining = 5;
    EventFunctionWrapper tick(
        [&] {
            if (--remaining > 0)
                sim.eventq().schedule(tick, sim.curTick() + 100);
        },
        "ctrl.tickEvent");
    sim.eventq().schedule(tick, 0);
    sim.run(fromNs(10));

    EXPECT_EQ(prof.byName().at("ctrl.tickEvent").count, 5u);
    EXPECT_EQ(prof.totalEvents(), 5u);

    sim.eventq().setProfiler(nullptr);
}

TEST(EventProfilerTest, ByTypeAggregatesAcrossInstances)
{
    EventProfiler prof;
    EventFunctionWrapper a([] {}, "vault0.nextReqEvent");
    EventFunctionWrapper b([] {}, "vault1.nextReqEvent");
    EventFunctionWrapper c([] {}, "plain");
    prof.record(a, 0.001);
    prof.record(a, 0.001);
    prof.record(b, 0.002);
    prof.record(c, 0.004);

    auto types = prof.byType();
    ASSERT_EQ(types.count("nextReqEvent"), 1u);
    EXPECT_EQ(types.at("nextReqEvent").count, 3u);
    EXPECT_DOUBLE_EQ(types.at("nextReqEvent").hostSeconds, 0.004);
    EXPECT_EQ(types.at("plain").count, 1u);
    EXPECT_EQ(prof.totalEvents(), 4u);
    EXPECT_DOUBLE_EQ(prof.totalHostSeconds(), 0.008);
    EXPECT_DOUBLE_EQ(prof.eventsPerSecond(), 4 / 0.008);
}

TEST(EventProfilerTest, ReportListsTypesAndSummary)
{
    EventProfiler prof;
    EventFunctionWrapper a([] {}, "ctrl.nextReqEvent");
    EventFunctionWrapper b([] {}, "ctrl.refreshEvent");
    prof.record(a, 0.010);
    prof.record(b, 0.001);

    std::ostringstream os;
    prof.report(os);
    std::string out = os.str();
    EXPECT_NE(out.find("nextReqEvent"), std::string::npos) << out;
    EXPECT_NE(out.find("refreshEvent"), std::string::npos) << out;
    EXPECT_NE(out.find("events executed: 2"), std::string::npos) << out;
    EXPECT_NE(out.find("events/sec"), std::string::npos) << out;
    // Sorted by host time: the expensive type prints first.
    EXPECT_LT(out.find("nextReqEvent"), out.find("refreshEvent"));
}

TEST(EventProfilerTest, ResetClears)
{
    EventProfiler prof;
    EventFunctionWrapper a([] {}, "ev");
    prof.record(a, 0.5);
    EXPECT_EQ(prof.totalEvents(), 1u);
    prof.reset();
    EXPECT_EQ(prof.totalEvents(), 0u);
    EXPECT_EQ(prof.totalHostSeconds(), 0.0);
    EXPECT_TRUE(prof.byName().empty());
    EXPECT_EQ(prof.eventsPerSecond(), 0.0);
}

} // namespace
} // namespace dramctrl
