/**
 * @file
 * Unit tests for the statistics framework: scalar/average/vector/
 * formula semantics, group trees, dumping, reset, and the self-scaling
 * histogram (including the bimodality detector used by the Fig. 7
 * reproduction).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ckpt/ckpt.hh"
#include "sim/logging.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace dramctrl {
namespace {

using namespace stats;

TEST(ScalarTest, AccumulatesAndResets)
{
    Group g("g");
    Scalar s(&g, "s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
    s += 5;
    ++s;
    s -= 2;
    EXPECT_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    s = 42;
    EXPECT_EQ(s.value(), 42.0);
}

TEST(AverageTest, ComputesMean)
{
    Group g("g");
    Average a(&g, "a", "an average");
    EXPECT_EQ(a.value(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.value(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(VectorTest, PerElementAndTotal)
{
    Group g("g");
    Vector v(&g, "v", "a vector", 4);
    v[0] += 1;
    v[3] += 9;
    EXPECT_EQ(v[0], 1.0);
    EXPECT_EQ(v[3], 9.0);
    EXPECT_EQ(v.total(), 10.0);
    v.reset();
    EXPECT_EQ(v.total(), 0.0);
}

TEST(VectorTest, OutOfRangeThrows)
{
    Group g("g");
    Vector v(&g, "v", "a vector", 2);
    EXPECT_THROW(v[5] += 1, std::out_of_range);
}

TEST(FormulaTest, EvaluatesLazily)
{
    Group g("g");
    Scalar num(&g, "num", "");
    Scalar den(&g, "den", "");
    Formula f(&g, "f", "ratio", [&] {
        return den.value() > 0 ? num.value() / den.value() : 0.0;
    });
    EXPECT_EQ(f.value(), 0.0);
    num += 6;
    den += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(GroupTest, FullPathAndLookup)
{
    Group root("system");
    Group child("ctrl", &root);
    Scalar s(&child, "reads", "read count");
    EXPECT_EQ(child.fullPath(), "system.ctrl");
    EXPECT_EQ(child.find("reads"), &s);
    EXPECT_EQ(child.find("nope"), nullptr);
}

TEST(GroupTest, DuplicateStatNamePanics)
{
    setThrowOnError(true);
    Group g("g");
    Scalar a(&g, "x", "");
    EXPECT_THROW(Scalar(&g, "x", ""), std::runtime_error);
    setThrowOnError(false);
}

TEST(GroupTest, NullParentPanics)
{
    setThrowOnError(true);
    EXPECT_THROW(Scalar(nullptr, "x", ""), std::runtime_error);
    setThrowOnError(false);
}

TEST(GroupTest, DumpContainsPathsValuesAndDescriptions)
{
    Group root("system");
    Group child("mem", &root);
    Scalar s(&child, "bytes", "bytes moved");
    s += 128;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("system.mem.bytes"), std::string::npos);
    EXPECT_NE(out.find("128"), std::string::npos);
    EXPECT_NE(out.find("bytes moved"), std::string::npos);
}

TEST(GroupTest, ResetAllRecursesAndRunsCallbacks)
{
    Group root("system");
    Group child("mem", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    int callbacks = 0;
    child.onReset([&] { ++callbacks; });
    root.resetAll();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
    EXPECT_EQ(callbacks, 1);
}

TEST(HistogramTest, BasicMoments)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 16);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_NEAR(h.stddev(), 10.0, 1e-9);
    EXPECT_EQ(h.minSample(), 10.0);
    EXPECT_EQ(h.maxSample(), 30.0);
}

TEST(HistogramTest, GrowsBucketsToCoverRange)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 8);
    EXPECT_EQ(h.bucketSize(), 1.0);
    h.sample(1000);
    EXPECT_GE(h.bucketSize() * static_cast<double>(h.numBuckets()),
              1000.0);
    // All mass still accounted for after folding.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        total += h.bucketCount(i);
    EXPECT_EQ(total, 1u);
}

TEST(HistogramTest, FoldingPreservesCounts)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 8);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i % 7));
    h.sample(500); // force several folds
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        total += h.bucketCount(i);
    EXPECT_EQ(total, 101u);
    EXPECT_EQ(h.count(), 101u);
}

TEST(HistogramTest, CdfIsMonotonic)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 32);
    for (int i = 0; i < 1000; ++i)
        h.sample(static_cast<double>(i % 97));
    double prev = 0;
    for (double v = 0; v <= 100; v += 5) {
        double c = h.cdfAt(v);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_NEAR(h.cdfAt(1000), 1.0, 1e-12);
}

TEST(HistogramTest, UnimodalDistributionHasOneMode)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 32);
    // A tight cluster around 50.
    for (int i = 0; i < 1000; ++i)
        h.sample(45.0 + (i % 10));
    EXPECT_EQ(h.numModes(), 1u);
}

TEST(HistogramTest, BimodalDistributionHasTwoModes)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 32);
    // Two well-separated clusters, like the write-drain read latency
    // distribution of the paper's Figure 7.
    for (int i = 0; i < 500; ++i)
        h.sample(40.0 + (i % 5));
    for (int i = 0; i < 500; ++i)
        h.sample(400.0 + (i % 5));
    EXPECT_EQ(h.numModes(), 2u);
}

TEST(HistogramTest, ResetClearsEverything)
{
    Group g("g");
    Histogram h(&g, "h", "hist", 8);
    h.sample(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketSize(), 1.0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, NegativeSamplePanics)
{
    setThrowOnError(true);
    Group g("g");
    Histogram h(&g, "h", "hist", 8);
    EXPECT_THROW(h.sample(-1.0), std::runtime_error);
    setThrowOnError(false);
}

/** Round-trip one stat through a single-section checkpoint. */
template <typename StatT>
std::string
saveStat(const StatT &stat)
{
    std::ostringstream os;
    {
        ckpt::CkptOut out(os);
        out.beginSection("stats");
        stat.ckptSave(out, "s");
        out.endSection();
    }
    return os.str();
}

template <typename StatT>
void
restoreStat(StatT &stat, const std::string &buf)
{
    std::istringstream is(buf);
    ckpt::CkptIn in(is);
    in.openSection("stats");
    stat.ckptRestore(in, "s");
}

TEST(StatsCkpt, ScalarRestoreAssignsNotAccumulates)
{
    Group g("g");
    Scalar a(&g, "s", "src");
    a += 17;
    const std::string buf = saveStat(a);

    Group g2("g");
    Scalar b(&g2, "s", "dst");
    b += 99; // pre-restore garbage that must be overwritten
    restoreStat(b, buf);
    EXPECT_EQ(b.value(), 17.0);

    // A second restore must not double anything either.
    restoreStat(b, buf);
    EXPECT_EQ(b.value(), 17.0);
}

TEST(StatsCkpt, AverageRestorePreservesSumAndCount)
{
    Group g("g");
    Average a(&g, "s", "src");
    a.sample(10);
    a.sample(20);
    const std::string buf = saveStat(a);

    Group g2("g");
    Average b(&g2, "s", "dst");
    b.sample(1000); // must be discarded by the restore
    restoreStat(b, buf);
    EXPECT_EQ(b.value(), 15.0);
    b.sample(30);
    EXPECT_EQ(b.value(), 20.0); // (10+20+30)/3: count restored too
}

TEST(StatsCkpt, HistogramRestoreDoesNotDoubleCountWarmupBins)
{
    Group g("g");
    Histogram a(&g, "s", "src", 8);
    for (int i = 0; i < 100; ++i)
        a.sample(40.0 + (i % 5));
    const std::string buf = saveStat(a);

    // The restore target has already seen samples (the double-count
    // hazard of --ckpt-restore after a warmup run): restore must
    // overwrite the bins, not add to them.
    Group g2("g");
    Histogram b(&g2, "s", "dst", 8);
    for (int i = 0; i < 1000; ++i)
        b.sample(200.0);
    restoreStat(b, buf);

    EXPECT_EQ(b.count(), 100u);
    EXPECT_EQ(b.mean(), a.mean());
    EXPECT_EQ(b.stddev(), a.stddev());
    EXPECT_EQ(b.bucketSize(), a.bucketSize());
    EXPECT_EQ(b.minSample(), a.minSample());
    EXPECT_EQ(b.maxSample(), a.maxSample());
    ASSERT_EQ(b.numBuckets(), a.numBuckets());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < b.numBuckets(); ++i) {
        EXPECT_EQ(b.bucketCount(i), a.bucketCount(i)) << "bucket " << i;
        total += b.bucketCount(i);
    }
    EXPECT_EQ(total, 100u); // no stale bins left behind
}

TEST(StatsCkpt, HistogramBucketCountMismatchIsFatal)
{
    Group g("g");
    Histogram a(&g, "s", "src", 8);
    a.sample(1.0);
    const std::string buf = saveStat(a);

    Group g2("g");
    Histogram b(&g2, "s", "dst", 16); // different configuration
    setThrowOnError(true);
    EXPECT_THROW(restoreStat(b, buf), std::runtime_error);
    setThrowOnError(false);
}

TEST(StatsCkpt, VectorRestoreOverwritesEveryLane)
{
    Group g("g");
    Vector a(&g, "s", "src", 3);
    a[0] += 1;
    a[1] += 2;
    a[2] += 3;
    const std::string buf = saveStat(a);

    Group g2("g");
    Vector b(&g2, "s", "dst", 3);
    b[0] += 50;
    restoreStat(b, buf);
    EXPECT_EQ(b[0], 1.0);
    EXPECT_EQ(b[1], 2.0);
    EXPECT_EQ(b[2], 3.0);

    Group g3("g");
    Vector c(&g3, "s", "dst", 4); // size mismatch must be fatal
    setThrowOnError(true);
    EXPECT_THROW(restoreStat(c, buf), std::runtime_error);
    setThrowOnError(false);
}

} // namespace
} // namespace dramctrl
