/**
 * @file
 * Tests for the freelist object pools: slot reuse, counter accounting,
 * the Pooled mixin's new/delete routing, and the headline property —
 * a warmed-up simulation performs no fresh allocations at all.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "harness/testbench.hh"
#include "mem/packet.hh"
#include "sim/pool.hh"
#include "trafficgen/random_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

struct Payload
{
    std::uint64_t a;
    std::uint64_t b;
};

TEST(ObjectPoolTest, ReusesFreedSlots)
{
    ObjectPool<Payload> pool;
    void *p1 = pool.allocate();
    void *p2 = pool.allocate();
    EXPECT_NE(p1, p2);
    pool.deallocate(p2);
    pool.deallocate(p1);
    // LIFO freelist: the most recently freed slot comes back first.
    EXPECT_EQ(pool.allocate(), p1);
    EXPECT_EQ(pool.allocate(), p2);
}

TEST(ObjectPoolTest, CountsFreshVersusRecycled)
{
    ObjectPool<Payload> pool;
    void *p = pool.allocate();
    EXPECT_EQ(pool.stats().totalAllocs, 1u);
    EXPECT_EQ(pool.stats().freshAllocs, 1u);
    EXPECT_EQ(pool.stats().inUse, 1u);
    pool.deallocate(p);
    EXPECT_EQ(pool.stats().inUse, 0u);
    pool.allocate();
    EXPECT_EQ(pool.stats().totalAllocs, 2u);
    EXPECT_EQ(pool.stats().freshAllocs, 1u) << "slot not recycled";
}

TEST(ObjectPoolTest, GrowsAcrossChunksWithDistinctSlots)
{
    ObjectPool<Payload> pool;
    std::set<void *> seen;
    std::vector<void *> held;
    for (int i = 0; i < 500; ++i) {
        void *p = pool.allocate();
        EXPECT_TRUE(seen.insert(p).second) << "slot handed out twice";
        held.push_back(p);
    }
    EXPECT_EQ(pool.stats().inUse, 500u);
    EXPECT_GE(pool.stats().capacity, 500u);
    for (void *p : held)
        pool.deallocate(p);
    // Draining and refilling must stay within the existing capacity.
    std::size_t cap = pool.stats().capacity;
    for (int i = 0; i < 500; ++i)
        pool.allocate();
    EXPECT_EQ(pool.stats().capacity, cap);
    EXPECT_EQ(pool.stats().freshAllocs, 500u);
}

TEST(ObjectPoolTest, PooledMixinRoutesNewAndDelete)
{
    const PoolStats &st = Packet::poolStats();
    std::uint64_t total_before = st.totalAllocs;
    auto *pkt = new Packet(MemCmd::ReadReq, 0x40, 64, 0);
    EXPECT_EQ(st.totalAllocs, total_before + 1);
    EXPECT_GE(st.inUse, 1u);
    void *addr = pkt;
    delete pkt;
    // The freed slot is at the freelist head, so an immediate
    // allocation gets the same storage back.
    auto *pkt2 = new Packet(MemCmd::WriteReq, 0x80, 64, 0);
    EXPECT_EQ(static_cast<void *>(pkt2), addr);
    std::uint64_t fresh_before = st.freshAllocs;
    delete pkt2;
    EXPECT_EQ(st.freshAllocs, fresh_before);
}

TEST(ObjectPoolTest, SteadyStateRunsAllocationFree)
{
    // The acceptance bar for the pooling work: once the pools have
    // reached their high-water marks, a simulation drives every
    // Packet allocation through the freelists. The first run is the
    // warm-up; an identical second run must not carve any fresh
    // storage (the fresh-alloc counter and capacity stay flat).
    auto run = [] {
        harness::SingleChannelSystem tb(testutil::noRefreshConfig(),
                                        harness::CtrlModel::Event);
        GenConfig gc;
        gc.windowSize = 1 << 22;
        gc.readPct = 50;
        gc.minITT = gc.maxITT = fromNs(3);
        gc.numRequests = 4000;
        gc.seed = 7;
        auto &gen = tb.addGen<RandomGen>(gc);
        tb.runToCompletion([&] { return gen.done(); },
                           fromUs(100000));
    };

    run(); // warm-up: pools grow to the workload's high-water mark

    std::uint64_t fresh = Packet::poolStats().freshAllocs;
    std::uint64_t cap = Packet::poolStats().capacity;
    std::uint64_t total = Packet::poolStats().totalAllocs;
    std::size_t in_use = Packet::poolStats().inUse;

    run(); // identical workload: must recycle everything

    EXPECT_GT(Packet::poolStats().totalAllocs, total)
        << "the run allocated packets";
    EXPECT_EQ(Packet::poolStats().freshAllocs, fresh)
        << "steady state carved fresh packet storage";
    EXPECT_EQ(Packet::poolStats().capacity, cap)
        << "steady state grew the packet pool";
    EXPECT_EQ(Packet::poolStats().inUse, in_use)
        << "packets leaked across a full run";
}

} // namespace
} // namespace dramctrl
