/**
 * @file
 * Shared test fixtures: a scriptable requestor that injects packets at
 * chosen ticks and records response times, plus canned configurations
 * with refresh disabled for deterministic timing checks.
 */

#ifndef DRAMCTRL_TESTS_TEST_UTIL_H
#define DRAMCTRL_TESTS_TEST_UTIL_H

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "dram/dram_presets.hh"
#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"

namespace dramctrl {
namespace testutil {

/**
 * A requestor that injects a scripted list of packets at given ticks
 * and logs every response. Refused packets are re-sent on retry (the
 * injection tick of later packets slips, like a stalled master).
 */
class TestRequestor : public SimObject
{
  public:
    struct Response
    {
        Tick tick;
        std::uint64_t pktId;
        MemCmd cmd;
        Addr addr;
        /** Tick the request was first put on the wire. */
        Tick injected;
        /** Latency attribution stamps carried by the response. */
        stats::LatencySpan span;
    };

    TestRequestor(Simulator &sim, std::string name)
        : SimObject(sim, std::move(name)),
          port_(this->name() + ".port", *this),
          injectEvent_([this] { inject(); },
                       this->name() + ".injectEvent")
    {}

    ~TestRequestor() override
    {
        if (injectEvent_.scheduled())
            deschedule(injectEvent_);
        delete blocked_;
        for (auto &s : script_)
            delete s.pkt;
    }

    RequestPort &port() { return port_; }

    /**
     * Script a packet injection.
     * @return the packet id for matching the response.
     */
    std::uint64_t
    inject(Tick when, MemCmd cmd, Addr addr, unsigned size = 64)
    {
        auto *pkt = new Packet(cmd, addr, size, 0);
        script_.push_back(Scripted{when, pkt});
        if (!injectEvent_.scheduled() ||
            injectEvent_.when() > std::max(curTick(), when))
            reschedule(injectEvent_, std::max(curTick(), when));
        return pkt->id();
    }

    const std::vector<Response> &responses() const { return responses_; }

    /** Response tick for a packet id; 0 if not (yet) answered. */
    Tick
    responseTick(std::uint64_t pkt_id) const
    {
        auto it = respByPkt_.find(pkt_id);
        return it == respByPkt_.end() ? 0 : it->second;
    }

    bool
    allResponded() const
    {
        return script_.empty() && blocked_ == nullptr &&
               outstanding_ == 0;
    }

    unsigned outstanding() const { return outstanding_; }
    unsigned retries() const { return retries_; }

  private:
    struct Scripted
    {
        Tick when;
        Packet *pkt;
    };

    class Port : public RequestPort
    {
      public:
        Port(std::string name, TestRequestor &req)
            : RequestPort(std::move(name)), req_(req)
        {}

        bool recvTimingResp(Packet *pkt) override
        {
            return req_.recvResp(pkt);
        }

        void recvReqRetry() override { req_.retry(); }

      private:
        TestRequestor &req_;
    };

    void
    inject()
    {
        while (!script_.empty() && blocked_ == nullptr &&
               script_.front().when <= curTick()) {
            Packet *pkt = script_.front().pkt;
            script_.pop_front();
            pkt->setInjectedTick(curTick());
            ++outstanding_;
            if (!port_.sendTimingReq(pkt)) {
                ++retries_;
                --outstanding_;
                blocked_ = pkt;
                return;
            }
        }
        if (!script_.empty() && blocked_ == nullptr)
            reschedule(injectEvent_,
                       std::max(curTick(), script_.front().when));
    }

    void
    retry()
    {
        Packet *pkt = blocked_;
        blocked_ = nullptr;
        ++outstanding_;
        if (!port_.sendTimingReq(pkt)) {
            --outstanding_;
            blocked_ = pkt;
            return;
        }
        inject();
    }

    bool
    recvResp(Packet *pkt)
    {
        responses_.push_back(Response{curTick(), pkt->id(),
                                      pkt->cmd(), pkt->addr(),
                                      pkt->injectedTick(),
                                      pkt->span()});
        respByPkt_[pkt->id()] = curTick();
        --outstanding_;
        delete pkt;
        return true;
    }

    Port port_;
    std::deque<Scripted> script_;
    std::vector<Response> responses_;
    std::map<std::uint64_t, Tick> respByPkt_;
    Packet *blocked_ = nullptr;
    unsigned outstanding_ = 0;
    unsigned retries_ = 0;
    EventFunctionWrapper injectEvent_;
};

/** DDR3-1333 with refresh disabled: fully deterministic timing. */
inline DRAMCtrlConfig
noRefreshConfig()
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.timing.tREFI = 0;
    return cfg;
}

/** Same, with zero static latencies (bare DRAM timing visible). */
inline DRAMCtrlConfig
bareTimingConfig()
{
    DRAMCtrlConfig cfg = noRefreshConfig();
    cfg.frontendLatency = 0;
    cfg.backendLatency = 0;
    return cfg;
}

} // namespace testutil
} // namespace dramctrl

#endif // DRAMCTRL_TESTS_TEST_UTIL_H
