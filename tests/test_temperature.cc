/**
 * @file
 * Tests for the temperature-derated refresh extension (the paper's
 * closing future-work note: "capture how the refresh rate varies with
 * temperature") and for the time-weighted queue occupancy statistics.
 */

#include <gtest/gtest.h>

#include "cyclesim/cycle_ctrl.hh"
#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

TEST(TemperatureTest, EffectiveRefiUnchangedAtOrBelowRating)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.temperatureC = 85.0;
    EXPECT_EQ(cfg.effectiveREFI(), cfg.timing.tREFI);
    cfg.temperatureC = 45.0;
    EXPECT_EQ(cfg.effectiveREFI(), cfg.timing.tREFI);
}

TEST(TemperatureTest, EffectiveRefiHalvesPerStep)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.temperatureC = 95.0; // one derating step
    EXPECT_EQ(cfg.effectiveREFI(), cfg.timing.tREFI / 2);
    cfg.temperatureC = 105.0; // two steps
    EXPECT_EQ(cfg.effectiveREFI(), cfg.timing.tREFI / 4);
}

TEST(TemperatureTest, EffectiveRefiNeverBelowTwiceTrfc)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.temperatureC = 300.0; // absurd: fully clamped
    EXPECT_GE(cfg.effectiveREFI(), 2 * cfg.timing.tRFC);
}

TEST(TemperatureTest, ZeroRefiStaysDisabled)
{
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    cfg.temperatureC = 120.0;
    EXPECT_EQ(cfg.effectiveREFI(), 0u);
}

TEST(TemperatureTest, HotDeviceRefreshesMoreOften)
{
    auto refreshes = [](double temp) {
        Simulator sim;
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        cfg.timing.tREFI = fromUs(2);
        cfg.temperatureC = temp;
        DRAMCtrl ctrl(sim, "ctrl", cfg,
                      AddrRange(0, cfg.org.channelCapacity));
        sim.run(fromUs(40));
        return ctrl.ctrlStats().numRefreshes.value();
    };
    double cool = refreshes(85.0);
    double hot = refreshes(95.0);
    EXPECT_NEAR(hot, 2 * cool, 2.0);
}

TEST(TemperatureTest, CycleModelDeratesToo)
{
    auto refreshes = [](double temp) {
        Simulator sim;
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        cfg.timing.tREFI = fromUs(2);
        cfg.temperatureC = temp;
        cyclesim::CycleDRAMCtrl ctrl(
            sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        TestRequestor req(sim, "req");
        req.port().bind(ctrl.port());
        // Keep a trickle of work so the tick loop observes refreshes.
        for (unsigned i = 0; i < 40; ++i)
            req.inject(i * fromUs(1), MemCmd::ReadReq,
                       static_cast<Addr>(i) * 4096);
        sim.run(fromUs(41));
        return ctrl.ctrlStats().numRefreshes.value();
    };
    double cool = refreshes(85.0);
    double hot = refreshes(95.0);
    EXPECT_GT(hot, 1.5 * cool);
}

TEST(TemperatureTest, HotRefreshCostsBandwidth)
{
    auto util = [](double temp) {
        Simulator sim;
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        cfg.timing.tREFI = fromUs(1);
        cfg.timing.tRFC = fromNs(300);
        cfg.temperatureC = temp;
        DRAMCtrl ctrl(sim, "ctrl", cfg,
                      AddrRange(0, cfg.org.channelCapacity));
        TestRequestor req(sim, "req");
        req.port().bind(ctrl.port());
        Tick t = 0;
        for (unsigned i = 0; i < 2000; ++i) {
            req.inject(t, MemCmd::ReadReq, (i % 16) * 64);
            t += fromNs(6);
        }
        harness::runUntil(sim,
                          [&] { return req.allResponded(); });
        return ctrl.busUtilisation();
    };
    EXPECT_GT(util(85.0), util(115.0));
}

TEST(QueueOccupancyTest, IdleControllerHasZeroOccupancy)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    sim.run(fromUs(10));
    EXPECT_EQ(ctrl.ctrlStats().avgRdQLen.value(), 0.0);
    EXPECT_EQ(ctrl.ctrlStats().avgWrQLen.value(), 0.0);
}

TEST(QueueOccupancyTest, SaturatedReadQueueAveragesNearCapacity)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    cfg.readBufferSize = 8;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    // Random-row reads far faster than service: the queue pins full.
    Tick t = 0;
    for (unsigned i = 0; i < 2000; ++i) {
        req.inject(t, MemCmd::ReadReq,
                   static_cast<Addr>(i % 512) * 8192);
        t += fromNs(1);
    }
    harness::runUntil(sim, [&] { return req.allResponded(); });
    double avg = ctrl.ctrlStats().avgRdQLen.value();
    EXPECT_GT(avg, 5.0);
    EXPECT_LE(avg, 8.0);
}

TEST(QueueOccupancyTest, ParkedWritesIntegrateOverTime)
{
    Simulator sim;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeLowThreshold = 0.5; // park below the watermark
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());
    for (unsigned i = 0; i < 4; ++i)
        req.inject(0, MemCmd::WriteReq, static_cast<Addr>(i) * 64);
    // A read long after, forcing an occupancy update at a known time.
    req.inject(fromUs(10), MemCmd::ReadReq, 1 << 20);
    sim.run(fromUs(20));
    // Four writes parked for at least the first 10 us of the run.
    EXPECT_GE(ctrl.ctrlStats().wrQOccupancyTicks.value(),
              4.0 * static_cast<double>(fromUs(10)) * 0.9);
}

} // namespace
} // namespace dramctrl
