/**
 * @file
 * Tests for the FR-FCFS QoS scheduler extension: priority tiers win
 * arbitration, equal priorities degenerate to plain FR-FCFS, and a
 * prioritised requestor sees lower latency under contention.
 */

#include <gtest/gtest.h>

#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/random_gen.hh"
#include "xbar/xbar.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

class QosTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
    }

    static Addr
    addrOf(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        return ((row * 8 + bank) * 16 + col) * 64;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
};

TEST_F(QosTest, PriorityTierWinsWithinQueue)
{
    // Direct check of the arbitration: queue a low-priority row hit
    // and a high-priority conflict at the same tick; with FrFcfsPrio
    // the conflict is serviced first.
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.schedPolicy = SchedPolicy::FrFcfsPrio;
    // TestRequestor stamps id 0; priorities keyed by address pattern
    // cannot work — so run two configurations and compare orderings.
    build(cfg);
    TestRequestor req(*sim, "req");
    req.port().bind(ctrl->port());

    // Open row 0 of bank 0.
    req.inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    // Same-tick pair: hit (row 0) queued after conflict (row 1); with
    // all-equal priorities FR-FCFS picks the hit first.
    auto conflict = req.inject(fromNs(40), MemCmd::ReadReq,
                               addrOf(0, 1));
    auto hit = req.inject(fromNs(40), MemCmd::ReadReq,
                          addrOf(0, 0, 1));
    sim->run(fromUs(10));
    EXPECT_LT(req.responseTick(hit), req.responseTick(conflict));
}

TEST(QosSystemTest, PrioritisedGeneratorSeesLowerLatency)
{
    // Two identical random generators saturate one controller; the
    // prioritised one must end up with clearly lower read latency.
    auto run = [](bool with_qos) {
        Simulator sim;
        DRAMCtrlConfig cfg = presets::ddr3_1333();
        cfg.timing.tREFI = 0;
        if (with_qos) {
            cfg.schedPolicy = SchedPolicy::FrFcfsPrio;
            cfg.requestorPriorities = {0, 10};
        }
        DRAMCtrl ctrl(sim, "ctrl", cfg,
                      AddrRange(0, cfg.org.channelCapacity));
        Crossbar xbar(sim, "xbar", XBarConfig{});
        xbar.memSidePort(xbar.addMemSidePort(
                             AddrRange(0, cfg.org.channelCapacity)))
            .bind(ctrl.port());

        std::vector<std::unique_ptr<RandomGen>> gens;
        for (unsigned g = 0; g < 2; ++g) {
            GenConfig gc;
            gc.startAddr = g * (64ULL << 20);
            gc.windowSize = 64ULL << 20;
            gc.readPct = 100;
            gc.minITT = gc.maxITT = fromNs(8);
            gc.numRequests = 4000;
            gc.seed = 400 + g;
            gens.push_back(std::make_unique<RandomGen>(
                sim, "gen" + std::to_string(g), gc,
                static_cast<RequestorId>(g)));
            gens.back()->port().bind(
                xbar.cpuSidePort(xbar.addCpuSidePort()));
        }
        harness::runUntil(sim, [&] {
            return gens[0]->done() && gens[1]->done();
        });
        return std::pair{gens[0]->avgReadLatencyNs(),
                         gens[1]->avgReadLatencyNs()};
    };

    auto [base0, base1] = run(false);
    auto [qos0, qos1] = run(true);

    // Without QoS the two symmetric generators are within noise.
    EXPECT_NEAR(base0, base1, 0.25 * std::max(base0, base1));
    // With QoS, requestor 1 clearly beats requestor 0 and improves on
    // its own no-QoS latency.
    EXPECT_LT(qos1, 0.8 * qos0);
    EXPECT_LT(qos1, base1);
}

TEST(QosSystemTest, EqualPrioritiesMatchPlainFrFcfs)
{
    auto run = [](SchedPolicy policy) {
        Simulator sim;
        DRAMCtrlConfig cfg = presets::ddr3_1333();
        cfg.timing.tREFI = 0;
        cfg.schedPolicy = policy;
        DRAMCtrl ctrl(sim, "ctrl", cfg,
                      AddrRange(0, cfg.org.channelCapacity));
        GenConfig gc;
        gc.windowSize = 64ULL << 20;
        gc.readPct = 90;
        gc.minITT = gc.maxITT = fromNs(7);
        gc.numRequests = 3000;
        gc.seed = 77;
        RandomGen gen(sim, "gen", gc, 0);
        gen.port().bind(ctrl.port());
        harness::runUntil(sim, [&] { return gen.done(); });
        return gen.avgReadLatencyNs();
    };
    double frfcfs = run(SchedPolicy::FrFcfs);
    double prio = run(SchedPolicy::FrFcfsPrio);
    // With no priorities configured the tie-break logic differs only
    // in hit selection among equal tiers; latencies must stay close.
    EXPECT_NEAR(prio, frfcfs, 0.1 * frfcfs);
}

} // namespace
} // namespace dramctrl
