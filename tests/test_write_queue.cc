/**
 * @file
 * Write-queue semantics, verified down to the command bus: read
 * snooping/forwarding must answer from the queue without issuing DRAM
 * bursts, write merging must collapse overlapping bursts, writes must
 * be acknowledged at acceptance (early write response, long before —
 * or even without — the DRAM burst), and the whole path must satisfy
 * the conservation laws
 *
 *   RD commands issued == read bursts  - bursts forwarded from the
 *                                        write queue
 *   WR commands issued == write bursts - bursts merged in the queue
 *
 * which the differential fuzzer also checks on every run. Note the
 * drain policy (Section II-C): writes park below the low watermark
 * until enough accumulate, so single writes never reach the DRAM in
 * these short runs — the tests exploit that to observe the queue, and
 * push past the watermark when they need an actual drain.
 */

#include <gtest/gtest.h>

#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

class WriteQueueTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        ctrl->setCmdLogger(&log);
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    std::uint64_t
    countCmds(DRAMCmd kind) const
    {
        std::uint64_t n = 0;
        for (const CmdRecord &r : log.log())
            if (r.cmd == kind)
                ++n;
        return n;
    }

    /**
     * Queue enough distinct-line writes from @p from to push the
     * write queue past the low watermark and force a full drain.
     */
    Tick
    forceDrain(Tick from, unsigned count)
    {
        Tick when = from;
        for (unsigned i = 0; i < count; ++i) {
            when += fromNs(2.0);
            req->inject(when, MemCmd::WriteReq,
                        0x100000 + Addr(i) * 64);
        }
        return when;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
    CmdLogger log;
};

TEST_F(WriteQueueTest, ForwardedReadIssuesNoDRAMBurst)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::WriteReq, 0x4000);
    // Read of the same line while the write still sits in the queue:
    // serviced by snooping, so the command bus must show zero RDs.
    req->inject(fromNs(5.0), MemCmd::ReadReq, 0x4000);
    sim->run(fromUs(100));
    EXPECT_TRUE(req->allResponded());
    EXPECT_EQ(ctrl->ctrlStats().servicedByWrQ.value(), 1.0);
    EXPECT_EQ(countCmds(DRAMCmd::Rd), 0u);
}

TEST_F(WriteQueueTest, ForwardingSurvivesTheDrain)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::WriteReq, 0x4000);
    req->inject(fromNs(5.0), MemCmd::ReadReq, 0x4000);
    // Now force the queue past the watermark: the parked write (and
    // the fillers) must all reach the DRAM exactly once, and the
    // earlier forwarding must still have cost zero RD commands.
    forceDrain(fromNs(10.0), 40);
    sim->run(fromUs(200));
    ASSERT_TRUE(req->allResponded());

    const auto &st = ctrl->ctrlStats();
    EXPECT_EQ(st.servicedByWrQ.value(), 1.0);
    EXPECT_EQ(countCmds(DRAMCmd::Rd), 0u);
    EXPECT_EQ(static_cast<double>(countCmds(DRAMCmd::Wr)),
              st.writeBursts.value() - st.mergedWrBursts.value());
    EXPECT_EQ(countCmds(DRAMCmd::Wr), 41u); // nothing merged here
}

TEST_F(WriteQueueTest, PartialOverlapForwardsPerBurst)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    build(cfg);
    // A 64 B write covers one burst; a 128 B read splits into two.
    // Forwarding is per burst: the covered half comes from the queue,
    // the uncovered half must still be fetched — exactly one RD.
    req->inject(0, MemCmd::WriteReq, 0x8000, 64);
    req->inject(fromNs(5.0), MemCmd::ReadReq, 0x8000, 128);
    sim->run(fromUs(100));
    EXPECT_TRUE(req->allResponded());
    const auto &st = ctrl->ctrlStats();
    EXPECT_EQ(st.servicedByWrQ.value(), 1.0);
    EXPECT_EQ(st.readBursts.value(), 2.0);
    EXPECT_EQ(countCmds(DRAMCmd::Rd), 1u);
}

TEST_F(WriteQueueTest, MergedWriteIssuesSingleBurst)
{
    build(testutil::bareTimingConfig());
    // Two writes to the same burst merge into one queue entry; after
    // a forced drain the bus shows one WR for them, plus the fillers.
    req->inject(0, MemCmd::WriteReq, 0x2000);
    req->inject(fromNs(2.0), MemCmd::WriteReq, 0x2000);
    forceDrain(fromNs(10.0), 40);
    sim->run(fromUs(200));
    ASSERT_TRUE(req->allResponded());

    const auto &st = ctrl->ctrlStats();
    EXPECT_EQ(st.mergedWrBursts.value(), 1.0);
    EXPECT_EQ(static_cast<double>(countCmds(DRAMCmd::Wr)),
              st.writeBursts.value() - st.mergedWrBursts.value());
    EXPECT_EQ(countCmds(DRAMCmd::Wr), 41u); // 2 merged + 40 fillers
}

TEST_F(WriteQueueTest, EarlyWriteResponsePrecedesDRAMWrite)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.frontendLatency = fromNs(10.0);
    build(cfg);
    std::uint64_t id = req->inject(0, MemCmd::WriteReq, 0x1000);
    sim->run(fromUs(100));
    ASSERT_TRUE(req->allResponded());

    // The strongest form of "early": the ack left after just the
    // frontend pipeline, while the write itself never even reached
    // the DRAM (it parks below the drain watermark).
    EXPECT_EQ(req->responseTick(id), cfg.frontendLatency);
    EXPECT_EQ(countCmds(DRAMCmd::Wr), 0u);
}

TEST_F(WriteQueueTest, ConservationLawUnderMixedTraffic)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.writeBufferSize = 16; // low watermark 8: drains interleave
    build(cfg);
    // Interleave writes and reads over a small window so some reads
    // hit queued writes, some miss, and the queue drains repeatedly.
    Random rng(42);
    Tick when = 0;
    for (unsigned i = 0; i < 200; ++i) {
        when += fromNs(rng.uniform(2, 20));
        Addr a = rng.uniform(0, 63) * 64;
        req->inject(when, rng.chance(0.5) ? MemCmd::WriteReq
                                          : MemCmd::ReadReq,
                    a);
    }
    // Flush: writes below the low watermark would otherwise stay
    // parked at end of run and break the WR-side bookkeeping.
    forceDrain(when + fromNs(100.0), 16);
    sim->run(fromUs(500));
    ASSERT_TRUE(req->allResponded());

    const auto &st = ctrl->ctrlStats();
    EXPECT_GT(st.servicedByWrQ.value(), 0.0); // scenario exercises it
    EXPECT_GT(countCmds(DRAMCmd::Wr), 0u);    // ...and real drains
    EXPECT_EQ(static_cast<double>(countCmds(DRAMCmd::Rd)),
              st.readBursts.value() - st.servicedByWrQ.value());
    // Merged writes must likewise vanish from the bus.
    EXPECT_EQ(static_cast<double>(countCmds(DRAMCmd::Wr)),
              st.writeBursts.value() - st.mergedWrBursts.value());
}

} // namespace
} // namespace dramctrl
