/**
 * @file
 * Tests for the timing core and workload profiles: IPC limits, the
 * memory-latency feedback loop (the property traces cannot capture),
 * ROB blocking, and completion semantics.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hh"
#include "cpu/timing_core.hh"
#include "cpu/workload.hh"
#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

TEST(WorkloadTest, ProfilesResolve)
{
    for (const auto &name : workloads::names()) {
        WorkloadProfile p = workloads::byName(name);
        EXPECT_EQ(p.name, name);
        EXPECT_GT(p.memFraction, 0.0);
        EXPECT_LE(p.memFraction, 1.0);
        EXPECT_GE(p.readFraction, 0.0);
        EXPECT_LE(p.readFraction, 1.0);
        EXPECT_GT(p.footprintBytes, 0u);
    }
    setThrowOnError(true);
    EXPECT_THROW(workloads::byName("doom"), std::runtime_error);
    setThrowOnError(false);
}

TEST(WorkloadTest, CannealIsTheCacheHostileOne)
{
    // The Section IV-B case study depends on canneal having a large,
    // low-locality footprint.
    WorkloadProfile c = workloads::canneal();
    for (const auto &name : workloads::names()) {
        WorkloadProfile p = workloads::byName(name);
        EXPECT_LE(c.seqProb, p.seqProb);
        EXPECT_GE(c.footprintBytes, p.footprintBytes);
    }
}

/** Core driving an L1 + DRAM; returns the finished core's IPC. */
double
runCore(const WorkloadProfile &wl, std::uint64_t ops,
        Tick extra_mem_latency = 0)
{
    Simulator sim;
    CacheConfig l1;
    l1.size = 32 * 1024;
    l1.assoc = 2;
    l1.mshrs = 6;
    Cache cache(sim, "l1", l1);

    DRAMCtrlConfig mcfg = testutil::noRefreshConfig();
    mcfg.frontendLatency = fromNs(10) + extra_mem_latency;
    DRAMCtrl ctrl(sim, "ctrl", mcfg,
                  AddrRange(0, mcfg.org.channelCapacity));
    cache.memSidePort().bind(ctrl.port());

    CoreConfig ccfg;
    ccfg.numOps = ops;
    ccfg.seed = 5;
    TimingCore core(sim, "core", ccfg, wl, 0);
    core.dcachePort().bind(cache.cpuSidePort());

    harness::runUntil(sim, [&] { return core.done(); });
    EXPECT_TRUE(core.done());
    return core.ipc();
}

TEST(TimingCoreTest, CompletesConfiguredOps)
{
    Simulator sim;
    CacheConfig l1;
    l1.size = 32 * 1024;
    Cache cache(sim, "l1", l1);
    DRAMCtrlConfig mcfg = testutil::noRefreshConfig();
    DRAMCtrl ctrl(sim, "ctrl", mcfg,
                  AddrRange(0, mcfg.org.channelCapacity));
    cache.memSidePort().bind(ctrl.port());

    CoreConfig ccfg;
    ccfg.numOps = 5000;
    TimingCore core(sim, "core", ccfg, workloads::blackscholes(), 0);
    core.dcachePort().bind(cache.cpuSidePort());

    harness::runUntil(sim, [&] { return core.done(); });
    EXPECT_TRUE(core.done());
    EXPECT_GE(core.committed(), 5000u);
    EXPECT_GT(core.coreStats().memOps.value(), 0.0);
}

TEST(TimingCoreTest, IpcBoundedByCommitWidth)
{
    double ipc = runCore(workloads::blackscholes(), 20000);
    EXPECT_GT(ipc, 0.1);
    EXPECT_LE(ipc, 8.0);
}

TEST(TimingCoreTest, ComputeBoundBeatsMemoryBound)
{
    // Small-footprint, cache-friendly blackscholes must out-IPC the
    // cache-hostile canneal on the same system.
    double compute = runCore(workloads::blackscholes(), 20000);
    double memory = runCore(workloads::canneal(), 20000);
    EXPECT_GT(compute, 1.5 * memory);
}

TEST(TimingCoreTest, SlowerMemoryLowersIpc)
{
    // The feedback loop: added memory latency must reduce IPC for a
    // memory-bound workload.
    double fast = runCore(workloads::canneal(), 20000, 0);
    double slow = runCore(workloads::canneal(), 20000, fromNs(200));
    EXPECT_GT(fast, slow * 1.1);
}

TEST(TimingCoreTest, MemStallsAccumulateUnderPressure)
{
    Simulator sim;
    CacheConfig l1;
    l1.size = 1024; // tiny cache, constant misses
    l1.mshrs = 1;   // single outstanding miss
    Cache cache(sim, "l1", l1);
    DRAMCtrlConfig mcfg = testutil::noRefreshConfig();
    DRAMCtrl ctrl(sim, "ctrl", mcfg,
                  AddrRange(0, mcfg.org.channelCapacity));
    cache.memSidePort().bind(ctrl.port());

    CoreConfig ccfg;
    ccfg.numOps = 5000;
    TimingCore core(sim, "core", ccfg, workloads::canneal(), 0);
    core.dcachePort().bind(cache.cpuSidePort());

    harness::runUntil(sim, [&] { return core.done(); });
    EXPECT_GT(core.coreStats().memStallCycles.value(), 0.0);
}

TEST(TimingCoreTest, ValidatesConfig)
{
    setThrowOnError(true);
    Simulator sim;
    CoreConfig bad;
    bad.dispatchWidth = 0;
    EXPECT_THROW(TimingCore(sim, "c", bad, workloads::canneal(), 0),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST(MultiCoreSystemTest, RunsToCompletionAndReportsMetrics)
{
    harness::MultiCoreConfig cfg;
    cfg.numCores = 2;
    cfg.channels = 2;
    cfg.ctrl = testutil::noRefreshConfig();
    cfg.opsPerCore = 3000;
    harness::MultiCoreSystem sys(cfg, workloads::fluidanimate());
    sys.runToCompletion();

    EXPECT_TRUE(sys.core(0).done());
    EXPECT_TRUE(sys.core(1).done());
    EXPECT_GT(sys.aggregateIPC(), 0.0);
    EXPECT_GT(sys.l2MissLatencyNs(), 0.0);
    EXPECT_GE(sys.avgBusUtil(), 0.0);
    EXPECT_LE(sys.avgBusUtil(), 1.0);
    EXPECT_EQ(sys.numChannels(), 2u);
}

TEST(MultiCoreSystemTest, BothControllerModelsComplete)
{
    for (auto model :
         {harness::CtrlModel::Event, harness::CtrlModel::Cycle}) {
        harness::MultiCoreConfig cfg;
        cfg.numCores = 2;
        cfg.channels = 1;
        cfg.ctrl = testutil::noRefreshConfig();
        cfg.model = model;
        cfg.opsPerCore = 2000;
        harness::MultiCoreSystem sys(cfg, workloads::x264());
        sys.runToCompletion();
        EXPECT_TRUE(sys.core(0).done())
            << harness::toString(model);
    }
}

} // namespace
} // namespace dramctrl
