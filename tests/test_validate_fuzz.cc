/**
 * @file
 * Tests of the validation subsystem itself: the config fuzzer and
 * differential runner must pass on a clean build, an injected timing
 * fault must be caught by the online protocol audit and shrink to a
 * tiny reproducer, repro files must round-trip exactly through JSON,
 * the online checker must agree with batch mode on identical logs,
 * and the ddmin shrinker must converge under arbitrary predicates.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/protocol_checker.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "test_util.hh"
#include "validate/config_fuzzer.hh"
#include "validate/diff_runner.hh"
#include "validate/json_io.hh"
#include "validate/repro.hh"
#include "validate/shrinker.hh"

namespace dramctrl {
namespace validate {
namespace {

/** A small deterministic scenario shared by the fault tests. */
FuzzCase
fixedCase()
{
    FuzzCase fc;
    fc.cfg = testutil::noRefreshConfig();
    fc.presetName = "ddr3_1333";
    fc.stream.numRequests = 60;
    fc.stream.windowSize = 1ULL << 16;
    fc.stream.readPct = 100; // reads exercise tRCD on every row miss
    fc.stream.minITT = fromNs(5.0);
    fc.stream.maxITT = fromNs(40.0);
    return fc;
}

TEST(ValidateFuzz, ShortFuzzBatchPasses)
{
    FuzzerOptions fopts;
    fopts.numRequests = 80; // keep the batch quick
    for (std::uint64_t i = 0; i < 20; ++i) {
        Random rng(0xf00d + i);
        FuzzCase fc = sampleCase(rng, fopts);
        std::uint64_t streamSeed = rng.next();
        DiffResult dr = runDiff(fc, streamSeed);
        EXPECT_TRUE(dr.pass)
            << "case " << i << " (" << summarize(fc) << "):\n"
            << dr.describe();
    }
}

TEST(ValidateFuzz, InjectedTRCDFaultIsCaught)
{
    FuzzCase fc = fixedCase();
    DiffOptions opts;
    opts.injectTRCDScale = 0.5;
    opts.runCycle = false; // the fault is in the event model

    DiffResult dr = runDiff(fc, 99, opts);
    ASSERT_FALSE(dr.pass);
    EXPECT_GT(dr.event.protocolViolations, 0u);
    bool namesTRCD = false;
    for (const std::string &s : dr.event.violationSamples)
        if (s.find("tRCD") != std::string::npos)
            namesTRCD = true;
    EXPECT_TRUE(namesTRCD) << dr.describe();
}

TEST(ValidateFuzz, InjectedFaultShrinksToTinyRepro)
{
    FuzzCase fc = fixedCase();
    DiffOptions opts;
    opts.injectTRCDScale = 0.5;
    opts.runCycle = false;

    RequestStream full = generateStream(fc.stream, 99);
    ASSERT_FALSE(runDiffStream(fc, full, opts).pass);

    ShrinkOutcome sh = shrinkStream(fc, full, opts);
    EXPECT_TRUE(sh.minimal);
    // A single read on a closed bank already violates halved tRCD.
    EXPECT_LE(sh.stream.size(), 2u);
    EXPECT_FALSE(runDiffStream(fc, sh.stream, opts).pass);
}

TEST(ValidateFuzz, ReproRoundTripsThroughJson)
{
    ReproFile repro;
    repro.fc = fixedCase();
    repro.streamSeed = 99;
    repro.stream = generateStream(repro.fc.stream, 99);
    repro.stream.reqs.resize(5);
    repro.opts.injectTRCDScale = 0.5;
    repro.opts.runCycle = false;
    repro.opts.bandwidthRelTol = 0.25;
    repro.note = "round-trip test";

    std::string text = toJson(repro).dump(2);

    Json parsed;
    std::string err;
    ASSERT_TRUE(parseJson(text, parsed, &err)) << err;
    ReproFile back;
    ASSERT_TRUE(fromJson(parsed, back, &err)) << err;

    EXPECT_EQ(back.fc.presetName, repro.fc.presetName);
    EXPECT_EQ(back.fc.cfg.timing.tRCD, repro.fc.cfg.timing.tRCD);
    EXPECT_EQ(back.fc.cfg.timing.tREFI, repro.fc.cfg.timing.tREFI);
    EXPECT_EQ(back.fc.cfg.readBufferSize, repro.fc.cfg.readBufferSize);
    EXPECT_EQ(back.fc.stream.numRequests, repro.fc.stream.numRequests);
    EXPECT_EQ(back.streamSeed, repro.streamSeed);
    EXPECT_EQ(back.opts.injectTRCDScale, repro.opts.injectTRCDScale);
    EXPECT_EQ(back.opts.runCycle, repro.opts.runCycle);
    EXPECT_EQ(back.opts.bandwidthRelTol, repro.opts.bandwidthRelTol);
    EXPECT_EQ(back.note, repro.note);
    ASSERT_EQ(back.stream.reqs.size(), repro.stream.reqs.size());
    for (std::size_t i = 0; i < repro.stream.reqs.size(); ++i)
        EXPECT_EQ(back.stream.reqs[i], repro.stream.reqs[i]) << i;

    // And the replayed repro still fails exactly as recorded.
    EXPECT_FALSE(replay(back).pass);
}

TEST(ValidateFuzz, OnlineCheckerMatchesBatchMode)
{
    // Produce a command log from a deliberately broken controller.
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    Simulator sim;
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    ctrl.testScaleTRCD(0.5);
    CmdLogger log;
    ctrl.setCmdLogger(&log);
    testutil::TestRequestor req(sim, "req");
    req.port().bind(ctrl.port());

    Random rng(3);
    Tick when = 0;
    for (unsigned i = 0; i < 80; ++i) {
        when += fromNs(rng.uniform(5, 40));
        req.inject(when, MemCmd::ReadReq,
                   rng.uniform(0, 1023) * 64);
    }
    sim.run(fromUs(200));
    ASSERT_TRUE(req.allResponded());

    ProtocolChecker batch(cfg.org, cfg.timing);
    auto batchViolations = batch.check(log.log());
    ASSERT_GT(batchViolations.size(), 0u);

    ProtocolChecker online(cfg.org, cfg.timing);
    for (const CmdRecord &r : log.log())
        online.observe(r);
    online.finish();

    EXPECT_EQ(online.violationCount(), batchViolations.size());
    EXPECT_EQ(online.commandsChecked(), log.log().size());
    EXPECT_EQ(online.pendingRecords(), 0u);
    ASSERT_FALSE(online.violations().empty());
    EXPECT_EQ(online.violations().front().rule,
              batchViolations.front().rule);
}

TEST(ValidateFuzz, ShrinkerConvergesUnderArbitraryPredicate)
{
    RequestStream s;
    for (unsigned i = 0; i < 40; ++i)
        s.reqs.push_back({fromNs(10.0), i * 64, 64, true});

    // "Interesting" iff the two magic requests both survive: ddmin
    // must isolate exactly that pair.
    auto fails = [](const RequestStream &c) {
        bool a = false, b = false;
        for (const StreamRequest &r : c.reqs) {
            a |= r.addr == 7 * 64;
            b |= r.addr == 29 * 64;
        }
        return a && b;
    };

    ShrinkOutcome sh = shrinkStreamWith(s, fails);
    EXPECT_TRUE(sh.minimal);
    ASSERT_EQ(sh.stream.size(), 2u);
    EXPECT_EQ(sh.stream.reqs[0].addr, 7u * 64);
    EXPECT_EQ(sh.stream.reqs[1].addr, 29u * 64);
    EXPECT_GT(sh.evaluations, 0u);
}

TEST(ValidateFuzz, SampledConfigsAreValidAndQueueSafe)
{
    FuzzerOptions fopts;
    for (std::uint64_t i = 0; i < 200; ++i) {
        Random rng(0xabc + i);
        FuzzCase fc = sampleCase(rng, fopts);
        // check() fatals on inconsistency; reaching here means the
        // sample is self-consistent. Verify the anti-deadlock floor:
        // the largest possible request must fit the read queue.
        unsigned maxBytes = fc.stream.mixedSizes
                                ? 256
                                : fc.stream.blockSize;
        unsigned worst = maxBytes / fc.cfg.org.burstSize() + 1;
        EXPECT_GE(fc.cfg.readBufferSize, worst);
        EXPECT_GE(fc.cfg.writeBufferSize, worst);
        EXPECT_LE(fc.stream.windowSize, fc.cfg.org.channelCapacity);
    }
}

} // namespace
} // namespace validate
} // namespace dramctrl
