/**
 * @file
 * Tests for the crossbar: routing, channel interleaving, response
 * route-back, latency accounting, contention and back pressure.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "xbar/xbar.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

/** Two-channel system: requestor -> crossbar -> 2 event controllers. */
class XbarSystem
{
  public:
    explicit XbarSystem(std::uint64_t granularity = 64,
                        XBarConfig xcfg = XBarConfig{})
    {
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        xbar = std::make_unique<Crossbar>(sim, "xbar", xcfg);
        auto ranges = interleavedRanges(
            0, 2 * cfg.org.channelCapacity, granularity, 2);
        for (unsigned ch = 0; ch < 2; ++ch) {
            ctrls.push_back(std::make_unique<DRAMCtrl>(
                sim, "ctrl" + std::to_string(ch), cfg, ranges[ch]));
            unsigned idx = xbar->addMemSidePort(ranges[ch]);
            xbar->memSidePort(idx).bind(ctrls.back()->port());
        }
        req = std::make_unique<TestRequestor>(sim, "req");
        unsigned src = xbar->addCpuSidePort();
        req->port().bind(xbar->cpuSidePort(src));
    }

    Simulator sim;
    std::unique_ptr<Crossbar> xbar;
    std::vector<std::unique_ptr<DRAMCtrl>> ctrls;
    std::unique_ptr<TestRequestor> req;
};

TEST(XbarTest, RoutesByInterleavedAddress)
{
    XbarSystem sys;
    EXPECT_EQ(sys.xbar->route(0), 0u);
    EXPECT_EQ(sys.xbar->route(64), 1u);
    EXPECT_EQ(sys.xbar->route(128), 0u);
}

TEST(XbarTest, UnmappedAddressIsFatal)
{
    setThrowOnError(true);
    XbarSystem sys;
    EXPECT_THROW(sys.xbar->route(1ULL << 60), std::runtime_error);
    setThrowOnError(false);
}

TEST(XbarTest, OverlappingRangeRejected)
{
    setThrowOnError(true);
    Simulator sim;
    Crossbar xbar(sim, "xbar", XBarConfig{});
    xbar.addMemSidePort(AddrRange(0, 4096));
    EXPECT_THROW(xbar.addMemSidePort(AddrRange(2048, 4096)),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST(XbarTest, RequestsReachTheRightChannel)
{
    XbarSystem sys;
    // Four line-interleaved reads: two per channel.
    for (unsigned i = 0; i < 4; ++i)
        sys.req->inject(0, MemCmd::ReadReq, i * 64);
    sys.sim.run(fromUs(10));
    EXPECT_TRUE(sys.req->allResponded());
    EXPECT_EQ(sys.ctrls[0]->ctrlStats().readReqs.value(), 2.0);
    EXPECT_EQ(sys.ctrls[1]->ctrlStats().readReqs.value(), 2.0);
}

TEST(XbarTest, ResponsesRouteBackWithLatency)
{
    XBarConfig xcfg;
    xcfg.frontendLatency = fromNs(3);
    xcfg.responseLatency = fromNs(3);
    xcfg.width = 16;
    xcfg.clockPeriod = fromNs(1);
    XbarSystem sys(64, xcfg);
    auto id = sys.req->inject(0, MemCmd::ReadReq, 0);
    sys.sim.run(fromUs(10));
    // Bare DRAM latency plus both crossbar directions: header latency
    // and 64/16 = 4 cycles serialisation each way.
    Tick dram = fromNs(13.75 + 13.75 + 6);
    Tick xbar_each_way = fromNs(3) + 4 * fromNs(1);
    EXPECT_EQ(sys.req->responseTick(id), dram + 2 * xbar_each_way);
}

TEST(XbarTest, PageInterleavingSendsWholeRowsToOneChannel)
{
    XbarSystem sys(1024); // page granularity
    for (unsigned i = 0; i < 16; ++i)
        sys.req->inject(0, MemCmd::ReadReq, i * 64); // one whole row
    sys.sim.run(fromUs(10));
    EXPECT_EQ(sys.ctrls[0]->ctrlStats().readReqs.value(), 16.0);
    EXPECT_EQ(sys.ctrls[1]->ctrlStats().readReqs.value(), 0.0);
}

TEST(XbarTest, StatsCountForwardedTraffic)
{
    XbarSystem sys;
    for (unsigned i = 0; i < 6; ++i)
        sys.req->inject(0, MemCmd::ReadReq, i * 64);
    sys.sim.run(fromUs(10));
    const auto &s = sys.xbar->xbarStats();
    EXPECT_EQ(s.reqPackets.value(), 6.0);
    EXPECT_EQ(s.respPackets.value(), 6.0);
    EXPECT_EQ(s.bytesForwarded.value(), 2 * 6 * 64.0);
}

TEST(XbarTest, LayerContentionSerialises)
{
    // A tiny layer queue and a wide packet stream to one channel:
    // the requestor must observe retries, and everything completes.
    XBarConfig xcfg;
    xcfg.layerQueueLimit = 1;
    XbarSystem sys(64, xcfg);
    for (unsigned i = 0; i < 10; ++i)
        sys.req->inject(0, MemCmd::ReadReq, i * 128); // all channel 0
    sys.sim.run(fromUs(50));
    EXPECT_TRUE(sys.req->allResponded());
    EXPECT_GT(sys.req->retries(), 0u);
    EXPECT_GT(sys.xbar->xbarStats().reqRetries.value(), 0.0);
}

TEST(XbarTest, ManyRequestorsShareChannels)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    Simulator sim;
    Crossbar xbar(sim, "xbar", XBarConfig{});
    auto ranges =
        interleavedRanges(0, 2 * cfg.org.channelCapacity, 64, 2);
    std::vector<std::unique_ptr<DRAMCtrl>> ctrls;
    for (unsigned ch = 0; ch < 2; ++ch) {
        ctrls.push_back(std::make_unique<DRAMCtrl>(
            sim, "ctrl" + std::to_string(ch), cfg, ranges[ch]));
        xbar.memSidePort(xbar.addMemSidePort(ranges[ch]))
            .bind(ctrls.back()->port());
    }
    std::vector<std::unique_ptr<LinearGen>> gens;
    for (unsigned g = 0; g < 4; ++g) {
        GenConfig gc;
        gc.startAddr = g * (1 << 20);
        gc.windowSize = 1 << 20;
        gc.numRequests = 200;
        gc.minITT = gc.maxITT = fromNs(10);
        gc.seed = g + 1;
        gens.push_back(std::make_unique<LinearGen>(
            sim, "gen" + std::to_string(g), gc,
            static_cast<RequestorId>(g)));
        gens.back()->port().bind(
            xbar.cpuSidePort(xbar.addCpuSidePort()));
    }
    harness::runUntil(sim, [&] {
        return std::all_of(gens.begin(), gens.end(),
                           [](const auto &g) { return g->done(); });
    });
    for (const auto &g : gens) {
        EXPECT_TRUE(g->done());
        EXPECT_EQ(g->genStats().recvResponses.value(), 200.0);
    }
    // Interleaving spread the traffic over both channels.
    EXPECT_GT(ctrls[0]->ctrlStats().readReqs.value(), 0.0);
    EXPECT_GT(ctrls[1]->ctrlStats().readReqs.value(), 0.0);
}

} // namespace
} // namespace dramctrl
