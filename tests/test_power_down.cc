/**
 * @file
 * Tests for the precharge power-down extension (the paper's stated
 * future work in Section II-G): entry after the idle threshold, tXP
 * wake penalty, open rows surrendered on confirmed entry, interaction
 * with refresh, and the IDD2P term in the power model.
 */

#include <gtest/gtest.h>

#include "dram/dram_ctrl.hh"
#include "power/micron_power.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

constexpr Tick kRCD = 13750;
constexpr Tick kCL = 13750;
constexpr Tick kBURST = 6000;

class PowerDownTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    static DRAMCtrlConfig
    pdConfig()
    {
        DRAMCtrlConfig cfg = testutil::bareTimingConfig();
        cfg.enablePowerDown = true;
        cfg.powerDownDelay = fromNs(100);
        cfg.tXP = fromNs(6);
        return cfg;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(PowerDownTest, DisabledByDefault)
{
    build(testutil::bareTimingConfig());
    req->inject(0, MemCmd::ReadReq, 0);
    req->inject(fromUs(50), MemCmd::ReadReq, 64);
    sim->run(fromUs(100));
    EXPECT_EQ(ctrl->ctrlStats().powerDownTime.value(), 0.0);
    EXPECT_EQ(ctrl->ctrlStats().powerDownEntries.value(), 0.0);
}

TEST_F(PowerDownTest, WakePaysTxpAndLosesOpenRow)
{
    build(pdConfig());
    req->inject(0, MemCmd::ReadReq, 0);
    // Long idle gap: the device powers down and gives up row 0.
    Tick second = fromUs(50);
    auto rd = req->inject(second, MemCmd::ReadReq, 64); // same row
    sim->run(fromUs(100));

    EXPECT_EQ(ctrl->ctrlStats().powerDownEntries.value(), 1.0);
    EXPECT_GT(ctrl->ctrlStats().powerDownTime.value(), 0.0);
    // Row was surrendered: full activate path plus tXP, not a hit.
    EXPECT_EQ(req->responseTick(rd),
              second + fromNs(6) + kRCD + kCL + kBURST);
}

TEST_F(PowerDownTest, ArrivalWithinDelayKeepsRowOpen)
{
    build(pdConfig());
    req->inject(0, MemCmd::ReadReq, 0);
    // Second access arrives just inside the 100 ns window (the first
    // response completes at ~33.5 ns; entry would be ~147 ns).
    auto rd = req->inject(fromNs(80), MemCmd::ReadReq, 64);
    sim->run(fromUs(100));

    // Still a row hit, no tXP.
    EXPECT_EQ(req->responseTick(rd), fromNs(80) + kCL + kBURST);
    EXPECT_EQ(ctrl->ctrlStats().powerDownEntries.value(), 0.0);
}

TEST_F(PowerDownTest, AccumulatedTimeMatchesIdleGap)
{
    DRAMCtrlConfig cfg = pdConfig();
    build(cfg);
    req->inject(0, MemCmd::ReadReq, 0);
    Tick second = fromUs(50);
    req->inject(second, MemCmd::ReadReq, 64);
    sim->run(fromUs(100));

    // Entry at (first data done + tRP close + delay); exit at the
    // second arrival.
    Tick data_done = kRCD + kCL + kBURST;
    Tick entry = data_done + fromNs(13.75) + cfg.powerDownDelay;
    EXPECT_NEAR(ctrl->ctrlStats().powerDownTime.value(),
                static_cast<double>(second - entry),
                static_cast<double>(fromNs(15)));
}

TEST_F(PowerDownTest, EpisodePersistsAcrossRefreshes)
{
    DRAMCtrlConfig cfg = pdConfig();
    cfg.timing.tREFI = fromUs(2);
    build(cfg);
    req->inject(0, MemCmd::ReadReq, 0);
    // Idle across several refresh intervals, then one waking access:
    // the refreshes ran, but the power-down episode is a single one
    // spanning (nearly) the whole gap.
    req->inject(fromUs(11), MemCmd::ReadReq, 8192);
    sim->run(fromUs(20));
    EXPECT_GE(ctrl->ctrlStats().numRefreshes.value(), 4.0);
    EXPECT_EQ(ctrl->ctrlStats().powerDownEntries.value(), 1.0);
    EXPECT_GT(ctrl->ctrlStats().powerDownTime.value(),
              static_cast<double>(fromUs(9)));
}

TEST_F(PowerDownTest, RepeatedEpisodesAccumulate)
{
    build(pdConfig());
    for (unsigned i = 0; i < 5; ++i)
        req->inject(i * fromUs(20), MemCmd::ReadReq,
                    static_cast<Addr>(i) * 8192);
    sim->run(fromUs(200));
    EXPECT_GE(ctrl->ctrlStats().powerDownEntries.value(), 4.0);
    // Roughly (20 us - entry overhead) per gap.
    EXPECT_GT(ctrl->ctrlStats().powerDownTime.value(),
              4.0 * static_cast<double>(fromUs(15)));
}

TEST_F(PowerDownTest, PowerModelUsesIdd2p)
{
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    power::MicronPowerParams params = power::ddr3Params();

    PowerInputs active;
    active.window = fromUs(100);
    active.prechargeAllTime = fromUs(100);
    active.powerDownTime = 0;

    PowerInputs asleep = active;
    asleep.powerDownTime = fromUs(100);

    double p_active =
        power::computePower(active, cfg, params).background;
    double p_asleep =
        power::computePower(asleep, cfg, params).background;
    EXPECT_NEAR(p_active, params.idd2n * params.vdd * 8, 1e-9);
    EXPECT_NEAR(p_asleep, params.idd2p * params.vdd * 8, 1e-9);
    EXPECT_LT(p_asleep, p_active);
}

TEST_F(PowerDownTest, ThroughputUnaffectedUnderSaturation)
{
    // Back-to-back traffic never crosses the idle threshold: power
    // down must not change achieved bandwidth.
    DRAMCtrlConfig cfg = pdConfig();
    build(cfg);
    for (unsigned i = 0; i < 64; ++i)
        req->inject(0, MemCmd::ReadReq, (i % 16) * 64);
    sim->run(fromUs(50));
    EXPECT_TRUE(req->allResponded());
    // No idle gap inside the burst: no power-down was ever confirmed.
    EXPECT_EQ(ctrl->ctrlStats().powerDownEntries.value(), 0.0);
    // A straggler after a long gap confirms exactly one episode (the
    // one armed by the final drain).
    req->inject(fromUs(60), MemCmd::ReadReq, 0);
    sim->run(fromUs(100));
    EXPECT_EQ(ctrl->ctrlStats().powerDownEntries.value(), 1.0);
}

} // namespace
} // namespace dramctrl
