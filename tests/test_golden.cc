/**
 * @file
 * Golden-stats regression corpus (`ctest -R golden_`).
 *
 * Each DRAM preset runs a short deterministic workload per traffic
 * shape (linear, random, mixed read/write, write drain) and the full
 * stats JSON is compared byte-for-byte against the reference under
 * tests/golden/. Any change to controller timing, scheduling, stats
 * bookkeeping or the JSON writer shows up as a diff here — if the
 * change is intended, regenerate with tools/regen_golden.sh and
 * review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dram/dram_presets.hh"
#include "harness/testbench.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"

namespace dramctrl {
namespace {

struct GoldenCase
{
    std::string preset;
    std::string shape; // linear | random | mixed | writedrain
};

std::string
goldenName(const GoldenCase &c)
{
    return "golden_" + c.preset + "_" + c.shape;
}

std::string
caseName(const testing::TestParamInfo<GoldenCase> &info)
{
    return goldenName(info.param);
}

/** Run the canned workload for @p c and return the stats JSON. */
std::string
runCase(const GoldenCase &c)
{
    DRAMCtrlConfig cfg = presets::byName(c.preset);
    cfg.writeLowThreshold = 0.0;
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);

    GenConfig gc;
    gc.windowSize =
        std::min<std::uint64_t>(cfg.org.channelCapacity, 1ULL << 22);
    gc.minITT = gc.maxITT = fromNs(6.0);
    gc.numRequests = 300;
    gc.seed = 7;

    BaseGen *gen = nullptr;
    if (c.shape == "linear") {
        gc.readPct = 100;
        gen = &tb.addGen<LinearGen>(gc);
    } else if (c.shape == "random") {
        gc.readPct = 100;
        gen = &tb.addGen<RandomGen>(gc);
    } else if (c.shape == "mixed") {
        gc.readPct = 50;
        gen = &tb.addGen<RandomGen>(gc);
    } else { // writedrain: all writes, exercises the drain mode
        gc.readPct = 0;
        gen = &tb.addGen<LinearGen>(gc);
    }

    tb.runToCompletion([&] { return gen->done(); });

    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    os << "\n";
    return os.str();
}

class GoldenStats : public testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenStats, MatchesReference)
{
    const GoldenCase &c = GetParam();
    const std::string path =
        std::string(GOLDEN_DIR) + "/" + goldenName(c) + ".json";
    const std::string got = runCase(c);

    if (std::getenv("GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << got;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing reference " << path
        << " — generate the corpus with tools/regen_golden.sh";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "stats drifted from the reference; if intended, regenerate "
        << "with tools/regen_golden.sh and review the diff";
}

std::vector<GoldenCase>
allCases()
{
    std::vector<GoldenCase> cases;
    for (const std::string &preset : presets::names())
        for (const char *shape :
             {"linear", "random", "mixed", "writedrain"})
            cases.push_back({preset, shape});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenStats,
                         testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace dramctrl
