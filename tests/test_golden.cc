/**
 * @file
 * Golden-stats regression corpus (`ctest -R golden_`).
 *
 * Each DRAM preset runs a short deterministic workload per traffic
 * shape (linear, random, mixed read/write, write drain) and the full
 * stats JSON is compared byte-for-byte against the reference under
 * tests/golden/. Any change to controller timing, scheduling, stats
 * bookkeeping or the JSON writer shows up as a diff here — if the
 * change is intended, regenerate with tools/regen_golden.sh and
 * review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dram/dram_presets.hh"
#include "dram/plugin/plugin.hh"
#include "exec/batch_runner.hh"
#include "harness/config_file.hh"
#include "harness/multichannel.hh"
#include "harness/testbench.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "trafficgen/trace.hh"
#include "trafficgen/trace_file.hh"

namespace dramctrl {
namespace {

struct GoldenCase
{
    std::string preset;
    std::string shape; // linear | random | mixed | writedrain
};

std::string
goldenName(const GoldenCase &c)
{
    return "golden_" + c.preset + "_" + c.shape;
}

std::string
caseName(const testing::TestParamInfo<GoldenCase> &info)
{
    return goldenName(info.param);
}

/** Run the canned workload for @p c and return the stats JSON. */
std::string
runCase(const GoldenCase &c)
{
    DRAMCtrlConfig cfg = presets::byName(c.preset);
    cfg.writeLowThreshold = 0.0;
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);

    GenConfig gc;
    gc.windowSize =
        std::min<std::uint64_t>(cfg.org.channelCapacity, 1ULL << 22);
    gc.minITT = gc.maxITT = fromNs(6.0);
    gc.numRequests = 300;
    gc.seed = 7;

    BaseGen *gen = nullptr;
    if (c.shape == "linear") {
        gc.readPct = 100;
        gen = &tb.addGen<LinearGen>(gc);
    } else if (c.shape == "random") {
        gc.readPct = 100;
        gen = &tb.addGen<RandomGen>(gc);
    } else if (c.shape == "mixed") {
        gc.readPct = 50;
        gen = &tb.addGen<RandomGen>(gc);
    } else { // writedrain: all writes, exercises the drain mode
        gc.readPct = 0;
        gen = &tb.addGen<LinearGen>(gc);
    }

    tb.runToCompletion([&] { return gen->done(); });

    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    os << "\n";
    return os.str();
}

class GoldenStats : public testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenStats, MatchesReference)
{
    const GoldenCase &c = GetParam();
    const std::string path =
        std::string(GOLDEN_DIR) + "/" + goldenName(c) + ".json";
    const std::string got = runCase(c);

    if (std::getenv("GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << got;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing reference " << path
        << " — generate the corpus with tools/regen_golden.sh";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "stats drifted from the reference; if intended, regenerate "
        << "with tools/regen_golden.sh and review the diff";
}

std::vector<GoldenCase>
allCases()
{
    std::vector<GoldenCase> cases;
    for (const std::string &preset : presets::names())
        for (const char *shape :
             {"linear", "random", "mixed", "writedrain"})
            cases.push_back({preset, shape});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenStats,
                         testing::ValuesIn(allCases()), caseName);

/**
 * Config-file twin: the committed examples/ddr4.json run through the
 * same workload must match the ddr4_2400 preset's reference
 * byte-for-byte — file-loaded and factory-built configurations are
 * interchangeable all the way down to the stats JSON. Never
 * regenerates: golden_ddr4_2400_mixed.json is owned by the preset
 * case above.
 */
TEST(GoldenConfigFile, ExampleDdr4MatchesPresetReference)
{
    DRAMCtrlConfig cfg = harness::loadConfigFile(
        std::string(EXAMPLES_DIR) + "/ddr4.json");
    cfg.writeLowThreshold = 0.0;
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);
    GenConfig gc;
    gc.windowSize =
        std::min<std::uint64_t>(cfg.org.channelCapacity, 1ULL << 22);
    gc.minITT = gc.maxITT = fromNs(6.0);
    gc.numRequests = 300;
    gc.seed = 7;
    gc.readPct = 50;
    BaseGen &gen = tb.addGen<RandomGen>(gc);
    tb.runToCompletion([&] { return gen.done(); });

    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    os << "\n";

    const std::string path =
        std::string(GOLDEN_DIR) + "/golden_ddr4_2400_mixed.json";
    if (std::getenv("GOLDEN_REGEN") != nullptr)
        GTEST_SKIP() << "reference owned by the preset case";
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing reference " << path
        << " — generate the corpus with tools/regen_golden.sh";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(os.str(), want.str())
        << "a config-file run drifted from its preset twin";
}

/**
 * Plugin corpus: the same short deterministic workloads with a
 * controller plugin chain attached, locking down the plugin counters
 * (ECC decode classes, PRAC alerts/mitigations, refresh-manager
 * command counts) and their interaction with the controller's own
 * statistics. Seeded ECC injection and the rotation state are pure
 * functions of the configuration, so these references are as stable
 * as the plain corpus.
 */
struct PluginGoldenCase
{
    std::string name;    // golden_plugin_<name>.json
    std::string preset;
    std::string plugins; // parsePluginList() csv
    std::string shape;   // linear | random | mixed
};

std::string
pluginGoldenName(const PluginGoldenCase &c)
{
    return "golden_plugin_" + c.name;
}

std::string
pluginCaseName(const testing::TestParamInfo<PluginGoldenCase> &info)
{
    return pluginGoldenName(info.param);
}

std::string
runPluginCase(const PluginGoldenCase &c)
{
    DRAMCtrlConfig cfg = presets::byName(c.preset);
    cfg.writeLowThreshold = 0.0;
    std::string err;
    if (!plugin::parsePluginList(c.plugins, cfg, err))
        ADD_FAILURE() << err;
    for (PluginSpec &p : cfg.plugins) {
        if (p.kind == "ecc") {
            p.eccBer = 1e-3;
            p.eccSeed = 99;
        } else if (p.kind == "prac") {
            p.pracThreshold = 4;
        } else if (p.kind == "refmgr-pb") {
            // Shorten tREFI so the short run sees the rotation.
            cfg.timing.tREFI = fromUs(1.0);
        }
    }
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);

    GenConfig gc;
    gc.windowSize = 1ULL << 16; // few rows: PRAC thresholds trip
    gc.minITT = gc.maxITT = fromNs(6.0);
    gc.numRequests = 300;
    gc.seed = 7;
    gc.readPct = c.shape == "linear" ? 100
                 : c.shape == "mixed" ? 50
                                      : 70;

    BaseGen *gen = c.shape == "linear"
                       ? static_cast<BaseGen *>(&tb.addGen<LinearGen>(gc))
                       : static_cast<BaseGen *>(&tb.addGen<RandomGen>(gc));
    tb.runToCompletion([&] { return gen->done(); });

    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    os << "\n";
    return os.str();
}

class GoldenPluginStats
    : public testing::TestWithParam<PluginGoldenCase>
{
};

TEST_P(GoldenPluginStats, MatchesReference)
{
    const PluginGoldenCase &c = GetParam();
    const std::string path =
        std::string(GOLDEN_DIR) + "/" + pluginGoldenName(c) + ".json";
    const std::string got = runPluginCase(c);

    if (std::getenv("GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << got;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing reference " << path
        << " — generate the corpus with tools/regen_golden.sh";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "stats drifted from the reference; if intended, regenerate "
        << "with tools/regen_golden.sh and review the diff";
}

std::vector<PluginGoldenCase>
pluginCases()
{
    return {
        {"ddr3_1600_ecc", "ddr3_1600", "ecc", "mixed"},
        {"ddr3_1600_prac", "ddr3_1600", "prac", "random"},
        {"ddr3_1600_refmgr_pb", "ddr3_1600", "refmgr-pb", "random"},
        {"lpddr3_1600_chain", "lpddr3_1600", "ecc,prac,refmgr",
         "mixed"},
    };
}

INSTANTIATE_TEST_SUITE_P(PluginCorpus, GoldenPluginStats,
                         testing::ValuesIn(pluginCases()),
                         pluginCaseName);

/**
 * Multi-channel corpus over the system presets (hmc_stack_*). One
 * generator per channel drives a channel-interleaved slice; the total
 * request budget is fixed so the 256-channel stack stays as quick as
 * the 16-channel one. Shard merge order is deterministic, so the
 * stats JSON is reference-comparable exactly like the single-channel
 * corpus (and byte-identical at any --sim-threads, which the shard
 * ctest cases assert separately).
 */
std::string
runSystemCase(const GoldenCase &c)
{
    harness::MultiChannelConfig mcfg =
        harness::systemPresetByName(c.preset);
    mcfg.ctrl.writeLowThreshold = 0.0;
    mcfg.ctrl.check();

    harness::MultiChannelSystem mc(mcfg);

    constexpr unsigned kTotalRequests = 768;
    GenConfig gc;
    gc.minITT = gc.maxITT = fromNs(6.0);
    gc.numRequests =
        std::max(1u, kTotalRequests / mcfg.channels);
    gc.readPct = c.shape == "linear" ? 100 : 50;

    std::vector<BaseGen *> gens;
    for (unsigned i = 0; i < mcfg.channels; ++i) {
        GenConfig g = harness::sliceGenWindow(gc, i, mcfg.channels,
                                              mc.totalCapacity());
        g.seed = exec::deriveSeed(7, i);
        if (c.shape == "linear")
            gens.push_back(&mc.addGen<LinearGen>(g));
        else
            gens.push_back(&mc.addGen<RandomGen>(g));
    }

    mc.runToCompletion();

    std::ostringstream os;
    mc.sim().dumpStatsJson(os);
    os << "\n";
    return os.str();
}

class GoldenSystemStats : public testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenSystemStats, MatchesReference)
{
    const GoldenCase &c = GetParam();
    const std::string path =
        std::string(GOLDEN_DIR) + "/" + goldenName(c) + ".json";
    const std::string got = runSystemCase(c);

    if (std::getenv("GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << got;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing reference " << path
        << " — generate the corpus with tools/regen_golden.sh";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "stats drifted from the reference; if intended, regenerate "
        << "with tools/regen_golden.sh and review the diff";
}

std::vector<GoldenCase>
systemCases()
{
    std::vector<GoldenCase> cases;
    for (const std::string &preset : harness::systemPresetNames())
        for (const char *shape : {"linear", "random"})
            cases.push_back({preset, shape});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(SystemCorpus, GoldenSystemStats,
                         testing::ValuesIn(systemCases()), caseName);

/**
 * Trace-replay corpus: the committed example trace under
 * tests/traces/ replayed through DDR3-1333. The binary (.dtrc) and
 * text (.txt) twins are the same 64-request stream, so both runs are
 * compared against the one reference — locking down both the decode
 * paths and the replay engine at once.
 */
std::string
runTraceCase(const std::string &trace_file)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.writeLowThreshold = 0.0;
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);
    TracePlayer &player = tb.addGen<TracePlayer>(
        makeTracePlayerConfig(std::string(TRACES_DIR) + "/" +
                              trace_file));
    tb.runToCompletion([&] { return player.done(); });

    std::ostringstream os;
    tb.sim().dumpStatsJson(os);
    os << "\n";
    return os.str();
}

class GoldenTraceReplay : public testing::TestWithParam<std::string>
{
};

TEST_P(GoldenTraceReplay, MatchesReference)
{
    const std::string path =
        std::string(GOLDEN_DIR) + "/golden_trace_replay.json";
    const std::string got = runTraceCase(GetParam());

    // Only the .dtrc run regenerates, so the text twin still
    // compares against the shared reference under GOLDEN_REGEN.
    if (std::getenv("GOLDEN_REGEN") != nullptr &&
        GetParam() == "example.dtrc") {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << got;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing reference " << path
        << " — generate the corpus with tools/regen_golden.sh";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "stats drifted from the reference; if intended, regenerate "
        << "with tools/regen_golden.sh and review the diff";
}

std::string
traceCaseName(const testing::TestParamInfo<std::string> &info)
{
    return info.param == "example.dtrc" ? "golden_trace_replay_dtrc"
                                        : "golden_trace_replay_txt";
}

INSTANTIATE_TEST_SUITE_P(TraceCorpus, GoldenTraceReplay,
                         testing::Values(std::string("example.dtrc"),
                                         std::string("example.txt")),
                         traceCaseName);

} // namespace
} // namespace dramctrl
