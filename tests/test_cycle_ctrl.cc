/**
 * @file
 * Tests for the cycle-based (DRAMSim2-style) comparator controller.
 * Cycle quantisation makes exact-tick equalities brittle, so latency
 * assertions use protocol lower bounds and small command-scheduling
 * allowances instead.
 */

#include <gtest/gtest.h>

#include "cyclesim/cycle_ctrl.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using cyclesim::CycleDRAMCtrl;
using testutil::TestRequestor;

class CycleCtrlTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<CycleDRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    static Addr
    addrOf(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        return ((row * 8 + bank) * 16 + col) * 64;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<CycleDRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(CycleCtrlTest, SingleReadLatencyBounds)
{
    build(testutil::bareTimingConfig());
    auto id = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(10));
    Tick resp = req->responseTick(id);
    ASSERT_GT(resp, 0u);
    // Protocol floor: tRCD + tCL + tBURST (cycle-quantised upward).
    EXPECT_GE(resp, fromNs(13.75 + 13.75 + 6));
    // Ceiling: floor plus a handful of scheduling cycles.
    EXPECT_LE(resp, fromNs(13.75 + 13.75 + 6) + 8 * fromNs(1.5));
}

TEST_F(CycleCtrlTest, RowHitsPipelineOnTheBus)
{
    build(testutil::bareTimingConfig());
    std::vector<std::uint64_t> ids;
    for (unsigned i = 0; i < 8; ++i)
        ids.push_back(req->inject(0, MemCmd::ReadReq, addrOf(0, 0, i)));
    sim->run(fromUs(10));
    Tick first = req->responseTick(ids.front());
    Tick last = req->responseTick(ids.back());
    // Seven additional bursts, each 4 cycles of data plus at most a
    // couple of scheduling cycles.
    EXPECT_GE(last - first, 7 * fromNs(6));
    EXPECT_LE(last - first, 7 * fromNs(6) + 14 * fromNs(1.5));
    EXPECT_GE(ctrl->ctrlStats().readRowHits.value(), 7.0);
}

TEST_F(CycleCtrlTest, RowConflictPaysPrechargeActivate)
{
    build(testutil::bareTimingConfig());
    auto a = req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    auto b = req->inject(0, MemCmd::ReadReq, addrOf(0, 1));
    sim->run(fromUs(10));
    // The conflict needs at least tRAS + tRP + tRCD + tCL + tBURST.
    EXPECT_GE(req->responseTick(b) - 0,
              fromNs(35 + 13.75 + 13.75 + 13.75 + 6));
    EXPECT_LT(req->responseTick(a), req->responseTick(b));
}

TEST_F(CycleCtrlTest, EarlyWriteResponse)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.frontendLatency = fromNs(10);
    build(cfg);
    auto id = req->inject(0, MemCmd::WriteReq, addrOf(0, 0));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(id), fromNs(10));
    // The write still reaches the DRAM.
    EXPECT_EQ(ctrl->ctrlStats().bytesWritten.value(), 64.0);
}

TEST_F(CycleCtrlTest, InterleavesReadsAndWritesInOrder)
{
    // No write drain: a write between two reads is serviced between
    // them (the architectural contrast with the event model).
    build(testutil::bareTimingConfig());
    auto r1 = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    req->inject(0, MemCmd::WriteReq, addrOf(0, 0, 1));
    auto r2 = req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 2));
    sim->run(fromUs(10));
    // r2 observes the write's bus time plus tWTR before its column
    // command: strictly more than one burst after r1.
    EXPECT_GE(req->responseTick(r2) - req->responseTick(r1),
              fromNs(6 + 7.5));
}

TEST_F(CycleCtrlTest, TransactionQueueBackpressure)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.readBufferSize = 2;
    cfg.writeBufferSize = 2; // unified queue limit = 4
    cfg.minWritesPerSwitch = 1;
    build(cfg);
    for (unsigned i = 0; i < 12; ++i)
        req->inject(0, MemCmd::ReadReq, addrOf(0, i));
    sim->run(fromUs(50));
    EXPECT_TRUE(req->allResponded());
    EXPECT_GE(req->retries(), 1u);
    EXPECT_GE(ctrl->ctrlStats().numRetries.value(), 1.0);
}

TEST_F(CycleCtrlTest, ClosedPageAutoPrecharges)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = PagePolicy::Closed;
    cfg.addrMapping = AddrMapping::RoCoRaBaCh;
    build(cfg);
    for (unsigned i = 0; i < 4; ++i)
        req->inject(0, MemCmd::ReadReq,
                    static_cast<Addr>(i) * 64 * 8); // bank 0, col i
    sim->run(fromUs(10));
    EXPECT_EQ(ctrl->ctrlStats().numActs.value(), 4.0);
    EXPECT_EQ(ctrl->ctrlStats().numPrecharges.value(), 4.0);
    EXPECT_EQ(ctrl->ctrlStats().readRowHits.value(), 0.0);
}

TEST_F(CycleCtrlTest, AdaptivePoliciesRejected)
{
    setThrowOnError(true);
    Simulator s;
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.pagePolicy = PagePolicy::OpenAdaptive;
    EXPECT_THROW(CycleDRAMCtrl(s, "ctrl", cfg,
                               AddrRange(0, cfg.org.channelCapacity)),
                 std::runtime_error);
    setThrowOnError(false);
}

TEST_F(CycleCtrlTest, RefreshHappensUnderLoad)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.tREFI = fromUs(1.0);
    build(cfg);
    // Keep the controller busy for ~5 refresh intervals.
    Tick t = 0;
    for (unsigned i = 0; i < 800; ++i) {
        req->inject(t, MemCmd::ReadReq, addrOf(i % 8, (i / 8) % 64));
        t += fromNs(6);
    }
    sim->run(fromUs(100));
    EXPECT_TRUE(req->allResponded());
    EXPECT_GE(ctrl->ctrlStats().numRefreshes.value(), 4.0);
}

TEST_F(CycleCtrlTest, IdleGapFastForwardsRefreshes)
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.timing.tREFI = fromUs(1.0);
    build(cfg);
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    // Long idle gap, then another request.
    req->inject(fromUs(50), MemCmd::ReadReq, addrOf(0, 1));
    sim->run(fromUs(100));
    EXPECT_TRUE(req->allResponded());
    // ~50 refresh intervals passed; they must be accounted without the
    // controller having ticked through the whole gap.
    EXPECT_GE(ctrl->ctrlStats().numRefreshes.value(), 40.0);
    Tick busy_ticks =
        ctrl->cyclesTicked() * cfg.timing.tCK;
    EXPECT_LT(busy_ticks, fromUs(10));
}

TEST_F(CycleCtrlTest, MultiBurstTransactionsComplete)
{
    build(testutil::bareTimingConfig());
    auto id = req->inject(0, MemCmd::ReadReq, addrOf(0, 0), 256);
    sim->run(fromUs(10));
    EXPECT_TRUE(req->allResponded());
    (void)id;
    EXPECT_EQ(ctrl->ctrlStats().readBursts.value(), 4.0);
    EXPECT_EQ(ctrl->ctrlStats().bytesRead.value(), 256.0);
}

TEST_F(CycleCtrlTest, ConservationUnderRandomLoad)
{
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    cfg.readBufferSize = 8;
    cfg.writeBufferSize = 8;
    cfg.minWritesPerSwitch = 4;
    build(cfg);
    Random rng(7);
    unsigned injected = 0;
    for (Tick t = 0; t < fromUs(3); t += rng.uniform(2000, 12000)) {
        req->inject(t,
                    rng.chance(0.5) ? MemCmd::ReadReq
                                    : MemCmd::WriteReq,
                    rng.uniform(0, 2047) * 64);
        ++injected;
    }
    sim->run(fromUs(200));
    EXPECT_TRUE(req->allResponded());
    EXPECT_EQ(req->responses().size(), injected);
    EXPECT_TRUE(ctrl->idle());
}

TEST_F(CycleCtrlTest, BusUtilisationBounded)
{
    build(testutil::bareTimingConfig());
    for (unsigned i = 0; i < 64; ++i)
        req->inject(0, MemCmd::ReadReq, addrOf(0, 0, i % 16));
    sim->run(fromUs(10));
    EXPECT_GT(ctrl->busUtilisation(), 0.0);
    EXPECT_LE(ctrl->busUtilisation(), 1.0);
}

TEST_F(CycleCtrlTest, TicksOnlyWhileBusy)
{
    build(testutil::noRefreshConfig());
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0));
    sim->run(fromUs(100));
    // The controller must have gone idle after the single request: the
    // cycle count stays tiny compared to the simulated window.
    EXPECT_LT(ctrl->cyclesTicked(), 200u);
}

} // namespace
} // namespace dramctrl
