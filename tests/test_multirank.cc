/**
 * @file
 * Multi-rank tests: the organisation's rank dimension (Section II-A
 * "a number of DRAM devices can be connected to the same busses in
 * ranks, offering additional parallelism"). Activate-to-activate
 * constraints (tRRD, tFAW) are per rank; the shared data bus is not.
 */

#include <gtest/gtest.h>

#include "dram/dram_ctrl.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using testutil::TestRequestor;

constexpr Tick kRCD = 13750;
constexpr Tick kCL = 13750;
constexpr Tick kBURST = 6000;
constexpr Tick kXAW = 30000;

DRAMCtrlConfig
twoRankConfig()
{
    DRAMCtrlConfig cfg = testutil::bareTimingConfig();
    cfg.org.ranksPerChannel = 2;
    cfg.org.channelCapacity *= 2; // keep rows-per-bank constant
    return cfg;
}

class MultiRankTest : public ::testing::Test
{
  protected:
    void
    build(DRAMCtrlConfig cfg)
    {
        sim = std::make_unique<Simulator>();
        ctrl = std::make_unique<DRAMCtrl>(
            *sim, "ctrl", cfg, AddrRange(0, cfg.org.channelCapacity));
        req = std::make_unique<TestRequestor>(*sim, "req");
        req->port().bind(ctrl->port());
    }

    /** Address of (rank, bank, row) under RoRaBaCoCh, 2 ranks. */
    static Addr
    addrOf(unsigned rank, unsigned bank, std::uint64_t row,
           std::uint64_t col = 0)
    {
        return (((row * 2 + rank) * 8 + bank) * 16 + col) * 64;
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<DRAMCtrl> ctrl;
    std::unique_ptr<TestRequestor> req;
};

TEST_F(MultiRankTest, DecoderSeparatesRanks)
{
    DRAMCtrlConfig cfg = twoRankConfig();
    AddrDecoder dec(cfg.org, cfg.addrMapping);
    DRAMAddr a = dec.decode(addrOf(0, 3, 7, 2));
    EXPECT_EQ(a.rank, 0u);
    EXPECT_EQ(a.bank, 3u);
    EXPECT_EQ(a.row, 7u);
    DRAMAddr b = dec.decode(addrOf(1, 3, 7, 2));
    EXPECT_EQ(b.rank, 1u);
    EXPECT_EQ(b.bank, 3u);
    EXPECT_EQ(b.row, 7u);
}

TEST_F(MultiRankTest, TrrdDoesNotCoupleRanks)
{
    build(twoRankConfig());
    // Same bank index in both ranks, both fresh rows: the second
    // activate is in another rank, so tRRD does not apply; only the
    // shared bus serialises the data.
    req->inject(0, MemCmd::ReadReq, addrOf(0, 0, 0));
    auto other_rank = req->inject(0, MemCmd::ReadReq, addrOf(1, 0, 0));
    sim->run(fromUs(10));
    EXPECT_EQ(req->responseTick(other_rank),
              kRCD + kCL + 2 * kBURST);
}

TEST_F(MultiRankTest, ActivationWindowIsPerRank)
{
    build(twoRankConfig());
    // Four activates in rank 0 fill its tXAW window; a fifth activate
    // in rank 1 is NOT window-limited.
    std::vector<std::uint64_t> ids;
    for (unsigned bank = 0; bank < 4; ++bank)
        ids.push_back(
            req->inject(0, MemCmd::ReadReq, addrOf(0, bank, 0)));
    auto r1 = req->inject(0, MemCmd::ReadReq, addrOf(1, 0, 0));
    auto r0_fifth = req->inject(0, MemCmd::ReadReq, addrOf(0, 4, 0));
    sim->run(fromUs(10));

    // FR-FCFS promotes the rank-1 access ahead of rank 0's remaining
    // banks: its activate is not tRRD-constrained, so its bank is
    // ready first and it takes the second data slot.
    EXPECT_EQ(req->responseTick(r1), kRCD + kCL + 2 * kBURST);
    // Rank 0's fifth activate waits for the window.
    EXPECT_EQ(req->responseTick(r0_fifth),
              kXAW + kRCD + kCL + kBURST);
}

TEST_F(MultiRankTest, PerBankStatsCoverBothRanks)
{
    build(twoRankConfig());
    req->inject(0, MemCmd::ReadReq, addrOf(0, 2, 0));
    req->inject(0, MemCmd::ReadReq, addrOf(1, 2, 0));
    sim->run(fromUs(10));
    const auto &s = ctrl->ctrlStats();
    // Flat bank index = rank * banksPerRank + bank.
    EXPECT_EQ(s.perBankRdBursts[2], 1.0);
    EXPECT_EQ(s.perBankRdBursts[8 + 2], 1.0);
}

TEST_F(MultiRankTest, ConservationWithRandomRankTraffic)
{
    build(twoRankConfig());
    Random rng(3);
    unsigned n = 0;
    for (Tick t = 0; t < fromUs(2); t += rng.uniform(3000, 9000)) {
        req->inject(t,
                    rng.chance(0.7) ? MemCmd::ReadReq
                                    : MemCmd::WriteReq,
                    rng.uniform(0, 1 << 16) * 64);
        ++n;
    }
    sim->run(fromUs(200));
    EXPECT_TRUE(req->allResponded());
    EXPECT_EQ(req->responses().size(), n);
}

TEST_F(MultiRankTest, RefreshCoversAllRanks)
{
    DRAMCtrlConfig cfg = twoRankConfig();
    cfg.timing.tREFI = fromUs(1);
    build(cfg);
    auto rd0 = req->inject(fromUs(1) + 1, MemCmd::ReadReq,
                           addrOf(0, 0, 0));
    auto rd1 = req->inject(fromUs(1) + 1, MemCmd::ReadReq,
                           addrOf(1, 0, 0));
    sim->run(fromUs(10));
    Tick refresh_done = fromUs(1) + fromNs(160);
    // Both ranks were blocked by the refresh.
    EXPECT_GE(req->responseTick(rd0),
              refresh_done + kRCD + kCL + kBURST);
    EXPECT_GE(req->responseTick(rd1),
              refresh_done + kRCD + kCL + kBURST);
}

} // namespace
} // namespace dramctrl
