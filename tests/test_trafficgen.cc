/**
 * @file
 * Tests for the synthetic traffic generators (Section III-A): address
 * stream shapes, read/write mixes, flow-control handling, and the
 * DRAM-aware generator's targeted row-hit rate and bank coverage.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/dram_ctrl.hh"
#include "harness/testbench.hh"
#include "sim/logging.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"
#include "test_util.hh"

namespace dramctrl {
namespace {

using harness::CtrlModel;
using harness::SingleChannelSystem;

GenConfig
baseGenConfig(std::uint64_t n)
{
    GenConfig g;
    g.windowSize = 1 << 20;
    g.blockSize = 64;
    g.minITT = fromNs(6);
    g.maxITT = fromNs(6);
    g.numRequests = n;
    g.seed = 99;
    return g;
}

/** A sink that records every request address and answers instantly. */
class RecordingSink : public SimObject
{
  public:
    RecordingSink(Simulator &sim, std::string name)
        : SimObject(sim, std::move(name)),
          port_(this->name() + ".port", *this)
    {}

    ResponsePort &port() { return port_; }

    std::vector<Packet *> pending;
    std::vector<Addr> addrs;
    std::vector<bool> isReadLog;

  private:
    class Port : public ResponsePort
    {
      public:
        Port(std::string name, RecordingSink &sink)
            : ResponsePort(std::move(name)), sink_(sink)
        {}

        bool
        recvTimingReq(Packet *pkt) override
        {
            sink_.addrs.push_back(pkt->addr());
            sink_.isReadLog.push_back(pkt->isRead());
            pkt->makeResponse();
            // Respond immediately (same call chain is allowed).
            return sink_.port_.sendTimingResp(pkt) ||
                   (sink_.pending.push_back(pkt), true);
        }

        void recvRespRetry() override {}

      private:
        RecordingSink &sink_;
    };

    Port port_;
};

TEST(LinearGenTest, SequentialWrappingAddresses)
{
    Simulator sim;
    GenConfig cfg = baseGenConfig(40);
    cfg.windowSize = 16 * 64; // wraps after 16 blocks
    LinearGen gen(sim, "gen", cfg, 0);
    RecordingSink sink(sim, "sink");
    gen.port().bind(sink.port());
    sim.run(fromUs(10));

    ASSERT_EQ(sink.addrs.size(), 40u);
    for (unsigned i = 0; i < 40; ++i)
        EXPECT_EQ(sink.addrs[i], (i % 16) * 64u);
    EXPECT_TRUE(gen.done());
}

TEST(RandomGenTest, AddressesAlignedAndInWindow)
{
    Simulator sim;
    GenConfig cfg = baseGenConfig(500);
    cfg.startAddr = 0x10000;
    cfg.windowSize = 1 << 16;
    RandomGen gen(sim, "gen", cfg, 0);
    RecordingSink sink(sim, "sink");
    gen.port().bind(sink.port());
    sim.run(fromUs(100));

    ASSERT_EQ(sink.addrs.size(), 500u);
    std::set<Addr> distinct;
    for (Addr a : sink.addrs) {
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a + 64, 0x10000u + (1 << 16) + 1);
        EXPECT_EQ(a % 64, 0u);
        distinct.insert(a);
    }
    // Uniform draws over 1024 blocks: expect plenty of distinct ones.
    EXPECT_GT(distinct.size(), 300u);
}

TEST(BaseGenTest, ReadPercentageApproximatelyHonoured)
{
    Simulator sim;
    GenConfig cfg = baseGenConfig(2000);
    cfg.readPct = 70;
    RandomGen gen(sim, "gen", cfg, 0);
    RecordingSink sink(sim, "sink");
    gen.port().bind(sink.port());
    sim.run(fromUs(100));

    unsigned reads = 0;
    for (bool r : sink.isReadLog)
        reads += r ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(reads) / 2000.0, 0.70, 0.05);
    EXPECT_EQ(gen.genStats().sentReads.value() +
                  gen.genStats().sentWrites.value(),
              2000.0);
}

TEST(BaseGenTest, ReadPct0And100AreExact)
{
    for (unsigned pct : {0u, 100u}) {
        Simulator sim;
        GenConfig cfg = baseGenConfig(100);
        cfg.readPct = pct;
        RandomGen gen(sim, "gen", cfg, 0);
        RecordingSink sink(sim, "sink");
        gen.port().bind(sink.port());
        sim.run(fromUs(100));
        for (bool r : sink.isReadLog)
            EXPECT_EQ(r, pct == 100);
    }
}

TEST(BaseGenTest, RespectsMaxOutstanding)
{
    // Against a real controller so responses take time.
    SingleChannelSystem tb(testutil::noRefreshConfig(),
                           CtrlModel::Event);
    GenConfig cfg = baseGenConfig(200);
    cfg.maxOutstanding = 4;
    cfg.minITT = fromNs(1);
    cfg.maxITT = fromNs(1);
    auto &gen = tb.addGen<RandomGen>(cfg);
    unsigned peak = 0;
    // Sample outstanding during the run.
    for (int i = 0; i < 400; ++i) {
        tb.sim().run(tb.sim().curTick() + fromNs(50));
        peak = std::max(peak, gen.outstanding());
    }
    EXPECT_LE(peak, 4u);
    tb.runToCompletion([&] { return gen.done(); });
    EXPECT_TRUE(gen.done());
}

TEST(BaseGenTest, LatencyStatsPopulatedAgainstRealController)
{
    SingleChannelSystem tb(testutil::noRefreshConfig(),
                           CtrlModel::Event);
    GenConfig cfg = baseGenConfig(300);
    auto &gen = tb.addGen<LinearGen>(cfg);
    tb.runToCompletion([&] { return gen.done(); });

    const auto &s = gen.genStats();
    EXPECT_EQ(s.recvResponses.value(), 300.0);
    EXPECT_EQ(s.readLatencyHist.count(), 300u);
    // Every read saw at least frontend + tCL + tBURST + backend.
    EXPECT_GE(gen.avgReadLatencyNs(), 10 + 13.75 + 6 + 10);
}

TEST(BaseGenTest, StopsInjectingWhenBlockedAndRecovers)
{
    DRAMCtrlConfig cfg = testutil::noRefreshConfig();
    cfg.readBufferSize = 2;
    SingleChannelSystem tb(cfg, CtrlModel::Event);
    GenConfig gc = baseGenConfig(100);
    gc.minITT = fromNs(1);
    gc.maxITT = fromNs(1); // far faster than the DRAM can serve
    auto &gen = tb.addGen<LinearGen>(gc);
    tb.runToCompletion([&] { return gen.done(); });
    EXPECT_TRUE(gen.done());
    EXPECT_GT(gen.genStats().retries.value(), 0.0);
    EXPECT_EQ(gen.genStats().recvResponses.value(), 100.0);
}

TEST(DramGenTest, ExpectedHitRateFormula)
{
    Simulator sim;
    DramGenConfig cfg;
    static_cast<GenConfig &>(cfg) = baseGenConfig(1);
    cfg.org = testutil::noRefreshConfig().org;
    cfg.strideBytes = 256; // 4 bursts
    DramGen gen(sim, "gen", cfg, 0);
    EXPECT_DOUBLE_EQ(gen.expectedOpenPageHitRate(), 3.0 / 4.0);
}

TEST(DramGenTest, SingleBankStrideNeverRevisitsRows)
{
    Simulator sim;
    DramGenConfig cfg;
    static_cast<GenConfig &>(cfg) = baseGenConfig(64);
    cfg.org = testutil::noRefreshConfig().org;
    cfg.mapping = AddrMapping::RoRaBaCoCh;
    cfg.strideBytes = 128; // 2 bursts per row visit
    cfg.numBanksTarget = 1;
    DramGen gen(sim, "gen", cfg, 0);
    RecordingSink sink(sim, "sink");
    gen.port().bind(sink.port());
    sim.run(fromUs(10));

    AddrDecoder dec(cfg.org, cfg.mapping);
    std::set<std::uint64_t> rows;
    for (unsigned i = 0; i < sink.addrs.size(); i += 2) {
        DRAMAddr a = dec.decode(sink.addrs[i]);
        DRAMAddr b = dec.decode(sink.addrs[i + 1]);
        EXPECT_EQ(a.bank, 0u);
        EXPECT_EQ(b.row, a.row);
        EXPECT_EQ(b.col, a.col + 1);
        EXPECT_TRUE(rows.insert(a.row).second)
            << "row revisited: " << a.row;
    }
}

TEST(DramGenTest, TargetsExactlyRequestedBanks)
{
    Simulator sim;
    DramGenConfig cfg;
    static_cast<GenConfig &>(cfg) = baseGenConfig(120);
    cfg.org = testutil::noRefreshConfig().org;
    cfg.strideBytes = 64;
    cfg.numBanksTarget = 3;
    DramGen gen(sim, "gen", cfg, 0);
    RecordingSink sink(sim, "sink");
    gen.port().bind(sink.port());
    sim.run(fromUs(20));

    AddrDecoder dec(cfg.org, cfg.mapping);
    std::set<unsigned> banks;
    for (Addr a : sink.addrs)
        banks.insert(dec.decode(a).bank);
    EXPECT_EQ(banks.size(), 3u);
}

TEST(DramGenTest, AchievesTargetHitRateOnOpenPageController)
{
    // End to end: stride of 8 bursts -> 7/8 row-hit rate at the
    // controller under an open-page policy.
    DRAMCtrlConfig ctrl_cfg = testutil::noRefreshConfig();
    ctrl_cfg.pagePolicy = PagePolicy::Open;
    SingleChannelSystem tb(ctrl_cfg, CtrlModel::Event);

    DramGenConfig cfg;
    static_cast<GenConfig &>(cfg) = baseGenConfig(1024);
    cfg.org = ctrl_cfg.org;
    cfg.strideBytes = 8 * 64;
    cfg.numBanksTarget = 4;
    auto &gen = tb.addGen<DramGen>(cfg);
    tb.runToCompletion([&] { return gen.done(); });

    EXPECT_NEAR(tb.eventCtrl().ctrlStats().rowHitRate.value(),
                7.0 / 8.0, 0.02);
}

TEST(DramGenTest, StrideClampedToPageAndValidated)
{
    setThrowOnError(true);
    Simulator sim;
    DramGenConfig cfg;
    static_cast<GenConfig &>(cfg) = baseGenConfig(1);
    cfg.org = testutil::noRefreshConfig().org;
    cfg.numBanksTarget = 99;
    EXPECT_THROW(DramGen(sim, "g1", cfg, 0), std::runtime_error);

    cfg.numBanksTarget = 1;
    cfg.strideBytes = 96; // not a multiple of the block size
    EXPECT_THROW(DramGen(sim, "g2", cfg, 0), std::runtime_error);
    setThrowOnError(false);
}

TEST(GenConfigTest, Validation)
{
    setThrowOnError(true);
    Simulator sim;
    GenConfig cfg = baseGenConfig(1);
    cfg.readPct = 150;
    EXPECT_THROW(RandomGen(sim, "g1", cfg, 0), std::runtime_error);

    cfg = baseGenConfig(1);
    cfg.minITT = fromNs(10);
    cfg.maxITT = fromNs(5);
    EXPECT_THROW(RandomGen(sim, "g2", cfg, 0), std::runtime_error);
    setThrowOnError(false);
}

} // namespace
} // namespace dramctrl
