/**
 * @file
 * Unit tests for AddrRange: containment, channel interleaving,
 * dense-address squeezing and its inverse, and disjointness.
 */

#include <gtest/gtest.h>

#include "mem/addr_range.hh"
#include "sim/logging.hh"
#include "xbar/xbar.hh"

namespace dramctrl {
namespace {

TEST(AddrRangeTest, PlainRangeContainment)
{
    AddrRange r(0x1000, 0x1000);
    EXPECT_TRUE(r.valid());
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x1fff));
    EXPECT_FALSE(r.contains(0xfff));
    EXPECT_FALSE(r.contains(0x2000));
    EXPECT_EQ(r.localSize(), 0x1000u);
    EXPECT_FALSE(r.interleaved());
}

TEST(AddrRangeTest, DefaultRangeIsInvalid)
{
    AddrRange r;
    EXPECT_FALSE(r.valid());
}

TEST(AddrRangeTest, InterleavedContainmentSelectsChannel)
{
    // 4 channels at 64-byte granularity over 4 KiB.
    AddrRange ch0(0, 4096, 64, 4, 0);
    AddrRange ch2(0, 4096, 64, 4, 2);

    EXPECT_TRUE(ch0.contains(0));
    EXPECT_TRUE(ch0.contains(63));
    EXPECT_FALSE(ch0.contains(64)); // selector 1
    EXPECT_TRUE(ch2.contains(128));
    EXPECT_TRUE(ch0.contains(256)); // wraps back to selector 0
    EXPECT_EQ(ch0.localSize(), 1024u);
    EXPECT_EQ(ch0.granularity(), 64u);
    EXPECT_EQ(ch0.numChannels(), 4u);
}

TEST(AddrRangeTest, EveryAddressBelongsToExactlyOneChannel)
{
    std::vector<AddrRange> ranges;
    for (unsigned ch = 0; ch < 4; ++ch)
        ranges.emplace_back(0, 4096, 64, 4, ch);

    for (Addr a = 0; a < 4096; a += 32) {
        unsigned owners = 0;
        for (const AddrRange &r : ranges)
            owners += r.contains(a) ? 1 : 0;
        EXPECT_EQ(owners, 1u) << "addr " << a;
    }
}

TEST(AddrRangeTest, RemoveIntlvBitsIsDenseAndInvertible)
{
    AddrRange ch1(0, 4096, 64, 4, 1);
    // The dense image of channel 1's addresses must be exactly
    // [0, localSize) with no holes.
    std::vector<bool> seen(ch1.localSize(), false);
    for (Addr a = 0; a < 4096; ++a) {
        if (!ch1.contains(a))
            continue;
        Addr dense = ch1.removeIntlvBits(a);
        ASSERT_LT(dense, ch1.localSize());
        seen[dense] = true;
        EXPECT_EQ(ch1.addIntlvBits(dense), a);
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(AddrRangeTest, RemoveIntlvBitsPreservesOffsetWithinGranule)
{
    AddrRange ch3(0, 1 << 20, 256, 8, 3);
    Addr a = 3 * 256 + 17; // granule 0 of channel 3, offset 17
    EXPECT_TRUE(ch3.contains(a));
    EXPECT_EQ(ch3.removeIntlvBits(a) % 256, 17u);
}

TEST(AddrRangeTest, NonZeroBaseInterleaving)
{
    AddrRange ch0(0x10000, 4096, 64, 2, 0);
    EXPECT_TRUE(ch0.contains(0x10000));
    EXPECT_FALSE(ch0.contains(0x10040));
    EXPECT_TRUE(ch0.contains(0x10080));
    EXPECT_EQ(ch0.removeIntlvBits(0x10080), 64u);
    EXPECT_EQ(ch0.addIntlvBits(64), 0x10080u);
}

TEST(AddrRangeTest, DisjointChannelsOfSameWindow)
{
    AddrRange a(0, 4096, 64, 4, 0);
    AddrRange b(0, 4096, 64, 4, 1);
    EXPECT_TRUE(a.disjoint(b));
    EXPECT_FALSE(a.disjoint(a));
}

TEST(AddrRangeTest, DisjointSeparateWindows)
{
    AddrRange a(0, 0x1000);
    AddrRange b(0x1000, 0x1000);
    AddrRange c(0x800, 0x1000);
    EXPECT_TRUE(a.disjoint(b));
    EXPECT_FALSE(a.disjoint(c));
}

TEST(AddrRangeTest, BadParametersAreFatal)
{
    setThrowOnError(true);
    EXPECT_THROW(AddrRange(0, 0), std::runtime_error);
    EXPECT_THROW(AddrRange(0, 4096, 100, 4, 0), std::runtime_error);
    EXPECT_THROW(AddrRange(0, 4096, 64, 3, 0), std::runtime_error);
    EXPECT_THROW(AddrRange(0, 4096, 64, 4, 4), std::runtime_error);
    EXPECT_THROW(AddrRange(32, 4096, 64, 4, 0), std::runtime_error);
    setThrowOnError(false);
}

TEST(AddrRangeTest, InterleavedRangesHelperCoversWholeWindow)
{
    auto ranges = interleavedRanges(0, 1 << 16, 64, 4);
    ASSERT_EQ(ranges.size(), 4u);
    for (Addr a = 0; a < (1u << 16); a += 64) {
        unsigned owners = 0;
        for (const AddrRange &r : ranges)
            owners += r.contains(a) ? 1 : 0;
        EXPECT_EQ(owners, 1u);
    }
}

TEST(AddrRangeTest, InterleavedRangesSingleChannelIsPlain)
{
    auto ranges = interleavedRanges(0, 1 << 16, 64, 1);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_FALSE(ranges[0].interleaved());
    EXPECT_EQ(ranges[0].localSize(), 1u << 16);
}

} // namespace
} // namespace dramctrl
