/**
 * @file
 * CmdLogger memory-bounding tests: the in-memory record cap with its
 * dropped counter, and the streaming-to-file mode that keeps nothing
 * in memory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "dram/cmd_log.hh"

namespace dramctrl {
namespace {

TEST(CmdLogTest, UnboundedByDefault)
{
    CmdLogger log;
    for (unsigned i = 0; i < 1000; ++i)
        log.record(i, DRAMCmd::Rd, 0, i % 8);
    EXPECT_EQ(log.size(), 1000u);
    EXPECT_EQ(log.totalRecorded(), 1000u);
    EXPECT_EQ(log.dropped(), 0u);
}

TEST(CmdLogTest, CapDropsAndCounts)
{
    CmdLogger log;
    log.setMaxRecords(2);
    log.record(10, DRAMCmd::Act, 0, 0, 5);
    log.record(20, DRAMCmd::Rd, 0, 0);
    log.record(30, DRAMCmd::Rd, 0, 0);
    log.record(40, DRAMCmd::Pre, 0, 0);

    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.totalRecorded(), 4u);
    EXPECT_EQ(log.dropped(), 2u);
    // The kept records are the earliest-recorded ones.
    EXPECT_EQ(log.log()[0].tick, 10u);
    EXPECT_EQ(log.log()[1].tick, 20u);
}

TEST(CmdLogTest, ClearResetsCounters)
{
    CmdLogger log;
    log.setMaxRecords(1);
    log.record(1, DRAMCmd::Rd, 0, 0);
    log.record(2, DRAMCmd::Rd, 0, 0);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.totalRecorded(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    // The cap survives a clear.
    log.record(3, DRAMCmd::Rd, 0, 0);
    log.record(4, DRAMCmd::Rd, 0, 0);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.dropped(), 1u);
}

TEST(CmdLogTest, StreamingKeepsNothingInMemory)
{
    std::string path = testing::TempDir() + "cmd_stream.log";
    CmdLogger log;
    // Records collected before streaming starts get flushed to the
    // file when it opens.
    log.record(100, DRAMCmd::Act, 0, 3, 42);
    ASSERT_TRUE(log.streamTo(path));
    EXPECT_TRUE(log.streaming());
    EXPECT_EQ(log.size(), 0u);

    log.record(200, DRAMCmd::Rd, 1, 3);
    log.record(300, DRAMCmd::Ref, 0, 0);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.totalRecorded(), 3u);
    EXPECT_EQ(log.dropped(), 0u);

    // clear() flushes the stream so the file is readable mid-run.
    log.clear();
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    std::string text = content.str();
    EXPECT_NE(text.find("ACT"), std::string::npos) << text;
    EXPECT_NE(text.find("rank 1 bank 3"), std::string::npos) << text;
    EXPECT_NE(text.find("REF"), std::string::npos) << text;
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(CmdLogTest, StreamToBadPathFails)
{
    CmdLogger log;
    EXPECT_FALSE(log.streamTo("/no/such/dir/cmd.log"));
    EXPECT_FALSE(log.streaming());
    // Still usable in memory.
    log.record(1, DRAMCmd::Rd, 0, 0);
    EXPECT_EQ(log.size(), 1u);
}

} // namespace
} // namespace dramctrl
