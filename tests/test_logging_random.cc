/**
 * @file
 * Unit tests for the logging helpers and the deterministic random
 * source.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace dramctrl {
namespace {

TEST(LoggingTest, FormatStringBasics)
{
    EXPECT_EQ(formatString("plain"), "plain");
    EXPECT_EQ(formatString("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(formatString("%s/%c", "a", 'b'), "a/b");
    EXPECT_EQ(formatString("%#x", 0x40), "0x40");
}

TEST(LoggingTest, FormatStringLongOutput)
{
    std::string big(500, 'x');
    std::string out = formatString("<%s>", big.c_str());
    EXPECT_EQ(out.size(), 502u);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(LoggingTest, QuietFlagRoundTrip)
{
    bool was_quiet = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("suppressed warning %d", 1);  // must not crash
    inform("suppressed info");         // must not crash
    setQuiet(was_quiet);
}

TEST(LoggingTest, PanicAndFatalThrowUnderTestHook)
{
    setThrowOnError(true);
    EXPECT_THROW(panic("boom %d", 7), std::runtime_error);
    EXPECT_THROW(fatal("bad config '%s'", "x"), std::runtime_error);
    try {
        panic("with detail %d", 42);
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("with detail 42"),
                  std::string::npos);
    }
    setThrowOnError(false);
}

TEST(LoggingTest, AssertMacroFormatsCondition)
{
    setThrowOnError(true);
    try {
        DC_ASSERT(1 == 2, "context %d", 5);
        FAIL() << "DC_ASSERT did not fire";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("1 == 2"), std::string::npos);
        EXPECT_NE(msg.find("context 5"), std::string::npos);
    }
    setThrowOnError(false);
}

TEST(RandomTest, SameSeedSameSequence)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3u);
}

TEST(RandomTest, UniformStaysInBounds)
{
    Random r(9);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(RandomTest, UniformCoversTheRange)
{
    Random r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.uniform(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformSingleton)
{
    Random r(3);
    EXPECT_EQ(r.uniform(42, 42), 42u);
}

TEST(RandomTest, UniformInvalidBoundsPanics)
{
    setThrowOnError(true);
    Random r(3);
    EXPECT_THROW(r.uniform(5, 4), std::runtime_error);
    setThrowOnError(false);
}

TEST(RandomTest, UniformRealInHalfOpenUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ChanceEdgesAreExact)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(RandomTest, ChanceApproximatesProbability)
{
    Random r(17);
    unsigned hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, GeometricMeanMatches)
{
    Random r(19);
    double sum = 0;
    const double p = 0.25;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(r.geometric(p));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / 20000, 3.0, 0.2);
}

TEST(RandomTest, GeometricValidation)
{
    setThrowOnError(true);
    Random r(21);
    EXPECT_THROW(r.geometric(0.0), std::runtime_error);
    EXPECT_THROW(r.geometric(1.5), std::runtime_error);
    EXPECT_EQ(r.geometric(1.0), 0u);
    setThrowOnError(false);
}

} // namespace
} // namespace dramctrl
