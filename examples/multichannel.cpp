/**
 * @file
 * Multi-channel memory system (the paper's Figure 1 structure): four
 * requestors share a crossbar that interleaves addresses over two
 * LPDDR3 channels at cache-line granularity. Shows how the channel
 * selection lives in the crossbar's interleaved address ranges while
 * each controller independently decodes rank/bank/row/column.
 *
 * Build & run:  ./build/examples/multichannel
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "sim/simulator.hh"
#include "trafficgen/random_gen.hh"
#include "xbar/xbar.hh"

using namespace dramctrl;

int
main()
{
    Simulator sim("multichannel");

    DRAMCtrlConfig cfg = presets::lpddr3_1600();
    const unsigned kChannels = 2;
    const std::uint64_t total = kChannels * cfg.org.channelCapacity;

    // The crossbar interleaves at 64-byte (cache line) granularity,
    // which matches the RoRaBaCoCh mapping (channel bits at the
    // bottom, Section II-F).
    XBarConfig xcfg;
    xcfg.width = 16;
    xcfg.frontendLatency = fromNs(3);
    xcfg.responseLatency = fromNs(3);
    Crossbar xbar(sim, "xbar", xcfg);

    std::vector<std::unique_ptr<DRAMCtrl>> ctrls;
    for (unsigned ch = 0; ch < kChannels; ++ch) {
        AddrRange range(0, total, 64, kChannels, ch);
        auto ctrl = std::make_unique<DRAMCtrl>(
            sim, "lpddr3_ch" + std::to_string(ch), cfg, range);
        xbar.memSidePort(xbar.addMemSidePort(range))
            .bind(ctrl->port());
        ctrls.push_back(std::move(ctrl));
    }

    // Four random-access requestors, each in its own address window.
    std::vector<std::unique_ptr<RandomGen>> gens;
    for (unsigned g = 0; g < 4; ++g) {
        GenConfig gc;
        gc.startAddr = static_cast<Addr>(g) * (total / 4);
        gc.windowSize = total / 4;
        gc.blockSize = 64;
        gc.readPct = 70;
        gc.minITT = gc.maxITT = fromNs(8);
        gc.numRequests = 20000;
        gc.seed = 100 + g;
        auto gen = std::make_unique<RandomGen>(
            sim, "gen" + std::to_string(g), gc,
            static_cast<RequestorId>(g));
        gen->port().bind(xbar.cpuSidePort(xbar.addCpuSidePort()));
        gens.push_back(std::move(gen));
    }

    bool done = false;
    while (!done) {
        sim.run(sim.curTick() + fromUs(1));
        done = true;
        for (const auto &gen : gens)
            done = done && gen->done();
    }

    std::printf("simulated %.2f us\n", toSeconds(sim.curTick()) * 1e6);
    std::printf("%-12s %10s %10s %12s\n", "channel", "reads",
                "writes", "bus util");
    for (unsigned ch = 0; ch < kChannels; ++ch) {
        const auto &s = ctrls[ch]->ctrlStats();
        std::printf("%-12s %10.0f %10.0f %11.1f%%\n",
                    ctrls[ch]->name().c_str(), s.readReqs.value(),
                    s.writeReqs.value(),
                    100 * ctrls[ch]->busUtilisation());
    }
    std::printf("%-12s %10s %10s\n", "generator", "avg rd ns", "");
    for (const auto &gen : gens)
        std::printf("%-12s %10.1f\n", gen->name().c_str(),
                    gen->avgReadLatencyNs());
    return 0;
}
