/**
 * @file
 * Quickstart: build the smallest useful system — one traffic generator
 * driving one event-based DRAM controller — run it, and read out the
 * statistics. This is the five-minute tour of the public API.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "power/micron_power.hh"
#include "sim/simulator.hh"
#include "trafficgen/linear_gen.hh"

using namespace dramctrl;

int
main()
{
    // 1. A simulator owns time (the event queue) and the stats tree.
    Simulator sim("quickstart");

    // 2. Pick a memory. Presets cover the paper's devices; every field
    //    (Table I of the paper) can be adjusted afterwards.
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.pagePolicy = PagePolicy::Open;
    cfg.schedPolicy = SchedPolicy::FrFcfs;

    // 3. Instantiate the controller over an address range.
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    // 4. Attach a requestor: a linear generator reading 64-byte lines.
    GenConfig gen_cfg;
    gen_cfg.windowSize = 8 * 1024 * 1024;
    gen_cfg.blockSize = 64;
    gen_cfg.readPct = 100;
    gen_cfg.minITT = gen_cfg.maxITT = fromNs(10);
    gen_cfg.numRequests = 50000;
    LinearGen gen(sim, "gen", gen_cfg, /*requestor id*/ 0);
    gen.port().bind(ctrl.port());

    // 5. Run until the generator is done (plus a drain margin).
    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));

    // 6. Read the results.
    std::printf("simulated time:   %.2f us\n",
                toSeconds(sim.curTick()) * 1e6);
    std::printf("read latency:     %.1f ns average\n",
                gen.avgReadLatencyNs());
    std::printf("bus utilisation:  %.1f%%\n",
                100 * ctrl.busUtilisation());
    std::printf("bandwidth:        %.2f / %.2f GByte/s\n",
                ctrl.achievedBandwidthGBs(), ctrl.peakBandwidthGBs());
    std::printf("row hit rate:     %.1f%%\n",
                100 * ctrl.ctrlStats().rowHitRate.value());

    // 7. Power, computed offline from the collected statistics.
    auto power = power::computePower(ctrl.powerInputs(), cfg,
                                     power::ddr3Params());
    std::printf("DRAM power:       %.2f W (act/pre %.2f, read %.2f, "
                "refresh %.2f, background %.2f)\n",
                power.total(), power.actPre, power.read, power.refresh,
                power.background);

    // 8. Or dump the whole statistics tree, gem5 style.
    std::printf("\n--- full statistics dump (excerpt) ---\n");
    sim.dumpStats(std::cout);
    return 0;
}
