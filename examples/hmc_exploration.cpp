/**
 * @file
 * Hybrid Memory Cube style system: the paper notes (Section II-F)
 * that "a model of HMC is only a matter of combining the crossbar
 * model with 16 instances of our controller model". This example does
 * exactly that and sweeps the offered load to find the knee of the
 * latency-bandwidth curve of a 16-vault stack, comparing it with a
 * single DDR3 channel of the same capacity.
 *
 * Build & run:  ./build/examples/hmc_exploration
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "sim/simulator.hh"
#include "trafficgen/random_gen.hh"
#include "xbar/xbar.hh"

using namespace dramctrl;

namespace {

struct Sample
{
    double offeredGBs;
    double achievedGBs;
    double latencyNs;
};

/** One load point against a 16-vault HMC-like stack. */
Sample
runHmc(Tick itt)
{
    Simulator sim("hmc");
    DRAMCtrlConfig cfg = presets::hmcVault();
    const unsigned kVaults = 16;
    // HMC's serial links are far wider than a DDR channel: give the
    // internal crossbar matching throughput so the vaults, not the
    // fabric, set the ceiling.
    XBarConfig xcfg;
    xcfg.width = 64;
    Crossbar xbar(sim, "xbar", xcfg);
    std::vector<std::unique_ptr<DRAMCtrl>> vaults;
    auto ranges = interleavedRanges(
        0, kVaults * cfg.org.channelCapacity, 256, kVaults);
    for (unsigned v = 0; v < kVaults; ++v) {
        vaults.push_back(std::make_unique<DRAMCtrl>(
            sim, "vault" + std::to_string(v), cfg, ranges[v]));
        xbar.memSidePort(xbar.addMemSidePort(ranges[v]))
            .bind(vaults.back()->port());
    }

    GenConfig gc;
    gc.windowSize = 1ULL << 30;
    gc.blockSize = 64;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = itt;
    gc.numRequests = 30000;
    gc.seed = 19;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(xbar.cpuSidePort(xbar.addCpuSidePort()));

    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));

    Sample s;
    s.offeredGBs = 64.0 / toSeconds(itt) / 1e9;
    s.achievedGBs = 0;
    for (const auto &v : vaults)
        s.achievedGBs += v->achievedBandwidthGBs();
    s.latencyNs = gen.avgReadLatencyNs();
    return s;
}

/** The same load against one DDR3-1600 channel. */
Sample
runDdr3(Tick itt)
{
    Simulator sim("ddr3");
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    GenConfig gc;
    gc.windowSize = 1ULL << 30;
    gc.blockSize = 64;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = itt;
    gc.numRequests = 30000;
    gc.seed = 19;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());
    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));
    return Sample{64.0 / toSeconds(itt) / 1e9,
                  ctrl.achievedBandwidthGBs(),
                  gen.avgReadLatencyNs()};
}

} // namespace

int
main()
{
    std::printf("random 70%%-read traffic, load sweep\n\n");
    std::printf("%10s | %21s | %21s\n", "offered",
                "16-vault HMC stack", "single DDR3-1600");
    std::printf("%10s | %10s %10s | %10s %10s\n", "GB/s", "GB/s",
                "lat ns", "GB/s", "lat ns");

    const double loads_gbs[] = {2, 4, 8, 12, 16, 24, 32};
    for (double load : loads_gbs) {
        Tick itt = static_cast<Tick>(64.0 / (load * 1e9) *
                                     static_cast<double>(
                                         kTicksPerSecond));
        Sample hmc = runHmc(itt);
        Sample ddr = runDdr3(itt);
        std::printf("%10.1f | %10.2f %10.1f | %10.2f %10.1f\n", load,
                    hmc.achievedGBs, hmc.latencyNs, ddr.achievedGBs,
                    ddr.latencyNs);
    }
    std::printf("\nThe vault stack tracks the offered load far past "
                "the single channel's\nsaturation point — the "
                "fast event-based model makes a 16-channel sweep "
                "cheap\n(Section II-F / III-D).\n");
    return 0;
}
