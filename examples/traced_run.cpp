/**
 * @file
 * Traced run: the same small system as quickstart, but with the whole
 * observability layer switched on — trace points on stderr, a Chrome
 * trace-event export of every packet's lifecycle and every DRAM
 * command, a periodic statistics sampler, and the event-queue
 * profiler.
 *
 * Build & run:  ./build/examples/traced_run
 * Then load trace.json into https://ui.perfetto.dev (or
 * chrome://tracing) and plot samples.csv with your tool of choice.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "obs/chrome_trace.hh"
#include "obs/event_profiler.hh"
#include "obs/stats_sampler.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "trafficgen/random_gen.hh"

using namespace dramctrl;

int
main()
{
    Simulator sim("traced_run");

    // 1. Trace points: pick channels, pick a sink. Here the refresh
    //    and power channels go to stderr — low-rate channels that show
    //    the controller's housekeeping heartbeat. Enabling DRAMCtrl or
    //    Port instead gives a per-packet narrative.
    obs::enableChannelsByName("Refresh,Power");
    obs::TextSink stderr_sink(std::cerr);
    obs::addSink(&stderr_sink);

    // 2. Chrome trace export: install the process-global recorder
    //    before building the system, so every accepted packet gets a
    //    lifecycle span and the queues get counter series.
    obs::ChromeTraceWriter chrome;
    obs::setChromeTracer(&chrome);

    // 3. The system under observation: one controller, one random
    //    70/30 read/write generator.
    DRAMCtrlConfig cfg = presets::ddr3_1600();
    DRAMCtrl ctrl(sim, "mem_ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    GenConfig gen_cfg;
    gen_cfg.windowSize = 8 * 1024 * 1024;
    gen_cfg.blockSize = 64;
    gen_cfg.readPct = 70;
    gen_cfg.minITT = gen_cfg.maxITT = fromNs(8);
    gen_cfg.numRequests = 2000;
    RandomGen gen(sim, "gen", gen_cfg, /*requestor id*/ 0);
    gen.port().bind(ctrl.port());

    // 4. DRAM command log, feeding per-rank command tracks into the
    //    Chrome trace after the run.
    CmdLogger cmd_log;
    ctrl.setCmdLogger(&cmd_log);

    // 5. Periodic stats sampling: a CSV time series, one row every
    //    500 ns of simulated time.
    std::ofstream csv("samples.csv");
    obs::StatsSampler sampler(sim, "sampler", fromNs(500), csv);
    sampler.addStat("mem_ctrl.readReqs");
    sampler.addStat("mem_ctrl.writeReqs");
    sampler.addStat("mem_ctrl.bytesRead");
    sampler.addStat("mem_ctrl.busUtil");
    sampler.addStat("mem_ctrl.rowHitRate");

    // 6. Event-queue profiler: who eats the host CPU?
    obs::EventProfiler profiler;
    sim.eventq().setProfiler(&profiler);

    // 7. Run to completion (plus drain).
    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));

    // 8. Write the artifacts.
    chrome.importCmdLog(cmd_log.log(), "mem_ctrl");
    chrome.writeFile("trace.json");
    obs::setChromeTracer(nullptr);
    sim.eventq().setProfiler(nullptr);
    obs::removeSink(&stderr_sink);

    std::printf("simulated time: %.2f us, %llu packets\n",
                toSeconds(sim.curTick()) * 1e6,
                static_cast<unsigned long long>(
                    ctrl.ctrlStats().readReqs.value() +
                    ctrl.ctrlStats().writeReqs.value()));
    std::printf("chrome trace:   trace.json (%zu events) — open in "
                "ui.perfetto.dev\n",
                chrome.numEvents());
    std::printf("stats samples:  samples.csv (%llu rows)\n",
                static_cast<unsigned long long>(sampler.samplesTaken()));

    std::printf("\nevent-queue profile:\n");
    profiler.report(std::cout);
    return 0;
}
