/**
 * @file
 * Trace recording and replay — and why the paper distrusts traces.
 *
 * Phase 1 records a live generator run through a TraceRecorder into a
 * trace file. Phase 2 replays the file against the same memory and
 * against a memory with one eighth the bandwidth. The live requestor
 * (which caps its requests in flight, like a core with a few MSHRs)
 * slows down with the slower memory; the replay keeps injecting on
 * the recorded schedule, missing the feedback loop — the latency gap
 * printed at the end is the modelling error traces introduce
 * (Section I of the paper).
 *
 * Build & run:  ./build/examples/trace_replay
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "sim/simulator.hh"
#include "trafficgen/random_gen.hh"
#include "trafficgen/trace.hh"

using namespace dramctrl;

namespace {

/**
 * @param slowdown scales the data-bus time: a slowdown of 8 models a
 *        memory with one eighth the bandwidth (think: narrow LPDDR
 *        channel instead of DDR3).
 */
DRAMCtrlConfig
memConfig(unsigned slowdown)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.timing.tBURST *= slowdown;
    return cfg;
}

/**
 * Live run through a recorder. The generator caps its in-flight
 * requests at 4, like a core with four MSHRs: when memory slows down,
 * the request stream slows down with it — the feedback loop.
 *
 * @return (avg latency, trace).
 */
std::pair<double, std::vector<TraceEntry>>
runLive(unsigned slowdown)
{
    Simulator sim("live");
    DRAMCtrlConfig cfg = memConfig(slowdown);
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TraceRecorder rec(sim, "rec");
    rec.memSidePort().bind(ctrl.port());

    GenConfig gc;
    gc.windowSize = 16 * 1024 * 1024;
    gc.readPct = 100;
    gc.minITT = gc.maxITT = fromNs(1);
    gc.maxOutstanding = 4; // the feedback: MLP-limited requestor
    gc.numRequests = 10000;
    gc.seed = 3;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(rec.cpuSidePort());

    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));
    return {gen.avgReadLatencyNs(), rec.trace()};
}

/** Replay a trace against a memory; returns avg latency. */
double
runReplay(const std::vector<TraceEntry> &trace, unsigned slowdown)
{
    Simulator sim("replay");
    DRAMCtrlConfig cfg = memConfig(slowdown);
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    TracePlayer player(sim, "player", trace, 0);
    player.port().bind(ctrl.port());

    while (!player.done())
        sim.run(sim.curTick() + fromUs(1));
    return player.avgReadLatencyNs();
}

} // namespace

int
main()
{
    // Phase 1: record a live run on the fast memory and round-trip it
    // through the on-disk format.
    auto [live_fast, trace] = runLive(1);
    auto path = std::filesystem::temp_directory_path() /
                "dramctrl_example_trace.txt";
    saveTrace(path.string(), trace);
    auto loaded = loadTrace(path.string());
    std::printf("recorded %zu requests to %s\n", loaded.size(),
                path.string().c_str());

    // Phase 2: replay on the same memory — faithful.
    double replay_fast = runReplay(loaded, 1);

    // Phase 3: both approaches on a memory with 1/8 the bandwidth.
    auto [live_slow, trace_slow] = runLive(8);
    (void)trace_slow;
    double replay_slow = runReplay(loaded, 8);

    std::printf("\n%-28s %12s %12s\n", "", "fast memory",
                "slow memory");
    std::printf("%-28s %9.1f ns %9.1f ns\n",
                "live generator (feedback)", live_fast, live_slow);
    std::printf("%-28s %9.1f ns %9.1f ns\n",
                "trace replay (no feedback)", replay_fast,
                replay_slow);
    std::printf("\nOn the fast memory the replay matches the live run "
                "(%.0f%% apart).\nOn the slow memory the replay keeps "
                "the recorded injection schedule while the\nlive "
                "requestor throttles, so the replay's queues explode: "
                "%.1fx the live latency.\nThis is the feedback loop "
                "the paper argues traces cannot capture.\n",
                100.0 * (replay_fast - live_fast) /
                    std::max(live_fast, 1.0),
                replay_slow / std::max(live_slow, 1.0));

    std::filesystem::remove(path);
    return 0;
}
