/**
 * @file
 * Memory technology exploration (the paper's Section IV-B use case in
 * miniature): sweep a random-access load across the DRAM presets and
 * compare latency, bandwidth and power — without changing a line of
 * the controller model, only its configuration. This is the
 * "controller-centric" flexibility argument of the paper.
 *
 * Build & run:  ./build/examples/memory_exploration
 */

#include <cstdio>
#include <string>

#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "power/micron_power.hh"
#include "sim/simulator.hh"
#include "trafficgen/random_gen.hh"

using namespace dramctrl;

namespace {

struct Row
{
    double latencyNs;
    double bandwidthGBs;
    double peakGBs;
    double util;
    double hitRate;
    double powerW;
};

Row
evaluate(const std::string &preset, Tick itt)
{
    Simulator sim("explore");
    DRAMCtrlConfig cfg = presets::byName(preset);
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    GenConfig gc;
    gc.windowSize = 64 * 1024 * 1024;
    gc.blockSize = 64;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = itt;
    gc.numRequests = 20000;
    gc.seed = 7;
    RandomGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());

    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));

    Row r;
    r.latencyNs = gen.avgReadLatencyNs();
    r.bandwidthGBs = ctrl.achievedBandwidthGBs();
    r.peakGBs = ctrl.peakBandwidthGBs();
    r.util = ctrl.busUtilisation();
    r.hitRate = ctrl.ctrlStats().rowHitRate.value();
    r.powerW = power::computePower(ctrl.powerInputs(), cfg,
                                   power::paramsFor(preset))
                   .total();
    return r;
}

} // namespace

int
main()
{
    std::printf("random 70%%-read traffic, one request per 10 ns:\n\n");
    std::printf("%-14s %10s %9s %9s %7s %9s %8s\n", "preset",
                "rd lat ns", "BW GB/s", "peak", "util", "hit rate",
                "power W");

    for (const auto &name : presets::names()) {
        Row r = evaluate(name, fromNs(10));
        std::printf("%-14s %10.1f %9.2f %9.2f %6.1f%% %8.1f%% %8.2f\n",
                    name.c_str(), r.latencyNs, r.bandwidthGBs,
                    r.peakGBs, 100 * r.util, 100 * r.hitRate,
                    r.powerW);
    }

    std::printf("\nsame sweep at saturation (one request per 3 ns):\n\n");
    std::printf("%-14s %10s %9s %9s %7s\n", "preset", "rd lat ns",
                "BW GB/s", "peak", "util");
    for (const auto &name : presets::names()) {
        Row r = evaluate(name, fromNs(3));
        std::printf("%-14s %10.1f %9.2f %9.2f %6.1f%%\n", name.c_str(),
                    r.latencyNs, r.bandwidthGBs, r.peakGBs,
                    100 * r.util);
    }
    return 0;
}
