/**
 * @file
 * Protocol auditing: attach a command logger to a controller, run a
 * workload, and verify the implied DRAM command stream against the
 * JEDEC timing rules with the ProtocolChecker.
 *
 * The event-based model never walks a DRAM state machine cycle by
 * cycle — it computes command launch times analytically (paper
 * Section II-D). The audit is the proof that the pruned model's
 * arithmetic still respects every constraint the real device would
 * enforce. The example also prints a window of the command stream,
 * which is the fastest way to see what the controller actually does
 * with your traffic.
 *
 * Build & run:  ./build/examples/protocol_audit
 */

#include <algorithm>
#include <cstdio>

#include "dram/cmd_log.hh"
#include "dram/dram_ctrl.hh"
#include "dram/dram_presets.hh"
#include "dram/protocol_checker.hh"
#include "sim/simulator.hh"
#include "trafficgen/dram_gen.hh"

using namespace dramctrl;

int
main()
{
    Simulator sim("audit");
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.pagePolicy = PagePolicy::OpenAdaptive;

    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));

    CmdLogger logger;
    ctrl.setCmdLogger(&logger);

    // A mixed DRAM-aware workload with enough structure to exercise
    // activates, precharges, both column directions and refreshes.
    DramGenConfig gc;
    gc.org = cfg.org;
    gc.strideBytes = 256;
    gc.numBanksTarget = 6;
    gc.readPct = 60;
    gc.minITT = gc.maxITT = fromNs(5);
    gc.numRequests = 5000;
    gc.seed = 21;
    DramGen gen(sim, "gen", gc, 0);
    gen.port().bind(ctrl.port());

    while (!gen.done())
        sim.run(sim.curTick() + fromUs(1));

    std::printf("simulated %.1f us, %zu DRAM commands implied\n\n",
                toSeconds(sim.curTick()) * 1e6, logger.size());

    // Show a window of the stream.
    std::printf("command stream (first 20 commands):\n");
    auto sorted = logger.log();
    std::sort(sorted.begin(), sorted.end(),
              [](const CmdRecord &a, const CmdRecord &b) {
                  return a.tick < b.tick;
              });
    for (unsigned i = 0; i < 20 && i < sorted.size(); ++i)
        std::printf("  %s\n", sorted[i].toString().c_str());

    // The audit.
    ProtocolChecker checker(cfg.org, cfg.timing);
    auto violations = checker.check(logger.log());
    if (violations.empty()) {
        std::printf("\naudit PASSED: %zu commands, zero JEDEC timing "
                    "violations\n",
                    logger.size());
    } else {
        std::printf("\naudit FAILED: %zu violations, first:\n",
                    violations.size());
        for (unsigned i = 0; i < 5 && i < violations.size(); ++i)
            std::printf("  %s\n", violations[i].toString().c_str());
        return 1;
    }

    // Command mix summary.
    unsigned counts[5] = {};
    for (const CmdRecord &c : sorted)
        ++counts[static_cast<unsigned>(c.cmd)];
    std::printf("\ncommand mix: ACT %u, PRE %u, RD %u, WR %u, REF %u\n",
                counts[0], counts[1], counts[2], counts[3], counts[4]);
    return 0;
}
