/**
 * @file
 * Supplementary validation: the classic latency-versus-offered-load
 * curve for both controller models on the Section III DDR3 channel.
 *
 * Not a single figure of the paper, but the canonical way to see the
 * two models' system-level agreement in one picture: both must show
 * the same flat region, the same knee, and the same saturation
 * bandwidth, with the latency blow-up at saturation governed by the
 * (matched) queue capacities.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "exec/batch_runner.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = parseJobs(argc, argv);
    printHeader("latency_load_curve: read latency vs offered load",
                "supplementary to Section III (model correlation)");

    std::printf("random reads, DDR3-1333 (peak 10.67 GB/s)\n\n");
    std::printf("%10s | %12s %12s | %12s %12s\n", "offered",
                "event lat", "event BW", "cycle lat", "cycle BW");
    std::printf("%10s | %12s %12s | %12s %12s\n", "GB/s", "ns",
                "GB/s", "ns", "GB/s");

    const std::vector<double> loads = {1.0, 2.0, 4.0, 6.0, 7.0, 8.0,
                                       9.0, 10.0, 12.0};

    struct LoadResult
    {
        PointResult ev, cy;
    };

    // One batch job per offered load (each runs both models); rows
    // print in load order as they land, identical for any --jobs.
    exec::BatchRunner runner(jobs);
    runner.run<LoadResult>(
        loads.size(),
        [&](std::size_t i) {
            double itt_ns = 64.0 / loads[i]; // 64-byte requests
            PointConfig pc;
            pc.page = PagePolicy::Open;
            pc.mapping = AddrMapping::RoRaBaCoCh;
            pc.readPct = 100;
            pc.numRequests = 8000;
            pc.itt = fromNs(itt_ns);
            // Match effective queue capacity for read-only traffic:
            // the cycle model's unified transaction queue holds read
            // + write entries, the event model only queues reads
            // here (Section III: "we match the queue sizes depending
            // on the experiment").
            pc.readBufferSize = 28;
            pc.writeBufferSize = 4;

            LoadResult r;
            pc.model = harness::CtrlModel::Event;
            r.ev = runLinearPoint(pc, /*random=*/true);
            pc.model = harness::CtrlModel::Cycle;
            r.cy = runLinearPoint(pc, /*random=*/true);
            return r;
        },
        [&](const exec::JobOutcome<LoadResult> &out) {
            if (!out.ok)
                fatal("load point %.1f failed: %s", loads[out.index],
                      out.error.c_str());
            std::printf("%10.1f | %12.1f %12.2f | %12.1f %12.2f\n",
                        loads[out.index],
                        out.value.ev.avgReadLatencyNs,
                        out.value.ev.bandwidthGBs,
                        out.value.cy.avgReadLatencyNs,
                        out.value.cy.bandwidthGBs);
        });

    std::printf("\nexpected: both models flat at low load, a shared "
                "knee near the random-access\nservice limit, and "
                "matching saturation bandwidth.\n");
    return 0;
}
