/**
 * @file
 * Experiment E5 — paper Figure 7: read latency distribution for mixed
 * (1:1) linear traffic under a closed-page policy.
 *
 * Expected shape: the event model is **bimodal** — reads arriving
 * while the write queue drains wait out the drain episode, reads
 * arriving otherwise are serviced immediately. The cycle model
 * services reads and writes in arrival order and stays unimodal
 * (Section III-C2).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

void
printDistribution(const char *label, const PointResult &r)
{
    std::printf("--- %s: mean %.1f ns, modes %u\n", label,
                r.avgReadLatencyNs, r.latencyModes);
    std::uint64_t total = 0;
    for (const auto &[lo, n] : r.latencyBuckets)
        total += n;
    for (const auto &[lo, n] : r.latencyBuckets) {
        double pct = 100.0 * static_cast<double>(n) /
                     static_cast<double>(total);
        std::printf("%8.0f ns %7.2f%% |", lo, pct);
        for (int i = 0; i < static_cast<int>(pct); ++i)
            std::printf("#");
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader(
        "fig7_lat_mixed_closed: read latency distribution, 1:1 linear "
        "mix, closed page",
        "Figure 7 (Section III-C2)");

    PointConfig pc;
    pc.page = PagePolicy::Closed;
    pc.mapping = AddrMapping::RoCoRaBaCh;
    pc.readPct = 50;
    pc.numRequests = 20000;
    pc.itt = fromNs(12);

    pc.model = harness::CtrlModel::Event;
    PointResult ev = runLinearPoint(pc);
    pc.model = harness::CtrlModel::Cycle;
    PointResult cy = runLinearPoint(pc);

    printDistribution("event model (expect bimodal)", ev);
    printDistribution("cycle model (expect unimodal)", cy);

    std::printf("\nsummary: event modes %u (bimodal: %s), cycle modes "
                "%u; mean diff %.1f%%\n",
                ev.latencyModes, ev.latencyModes >= 2 ? "yes" : "NO",
                cy.latencyModes,
                100.0 * (ev.avgReadLatencyNs - cy.avgReadLatencyNs) /
                    cy.avgReadLatencyNs);
    return 0;
}
