/**
 * @file
 * Ablation — address mapping schemes (Table I / Section III-B).
 *
 * The paper pairs RoRaBaCoCh with the open-page policy (sequential
 * streams stay in a row) and RoCoRaBaCh with the closed-page policy
 * (sequential streams spread over banks). This benchmark runs the
 * full cross product of mapping x policy on linear and random traffic
 * to show those pairings are the right ones — the mismatched
 * combinations visibly lose utilisation.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

double
runCombo(AddrMapping map, PagePolicy page, bool random)
{
    PointConfig pc;
    pc.model = harness::CtrlModel::Event;
    pc.page = page;
    pc.mapping = map;
    pc.readPct = 100;
    pc.numRequests = 8000;
    pc.itt = fromNs(3);
    PointResult r = runLinearPoint(pc, random);
    return r.busUtil;
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader("ablation_addr_mapping: mapping x page policy",
                "design choice behind Table I / Section III-B "
                "(test case formulation)");

    const AddrMapping maps[] = {AddrMapping::RoRaBaCoCh,
                                AddrMapping::RoRaBaChCo,
                                AddrMapping::RoCoRaBaCh};
    const PagePolicy pages[] = {PagePolicy::Open, PagePolicy::Closed};

    for (bool random : {false, true}) {
        std::printf("\n%s traffic; cells = bus utilisation %%\n",
                    random ? "random" : "linear (sequential)");
        std::printf("%12s", "mapping");
        for (PagePolicy p : pages)
            std::printf(" %12s", toString(p));
        std::printf("\n");
        for (AddrMapping m : maps) {
            std::printf("%12s", toString(m));
            for (PagePolicy p : pages)
                std::printf(" %11.1f%%", 100 * runCombo(m, p, random));
            std::printf("\n");
        }
    }

    std::printf("\nexpected: linear + open page peaks under "
                "RoRaBaCoCh (row streaming); linear +\nclosed page "
                "needs RoCoRaBaCh (bank spreading); random traffic is "
                "mapping-insensitive.\n");
    return 0;
}
