/**
 * @file
 * Trace-pipeline throughput benchmark: how fast the .dtrc format
 * writes, decodes (both reader backends), feeds the player's pull
 * seam, and replays through a simulated controller — plus the text
 * parser on the same trace for the binary-vs-text ratio. CI writes
 * the result to BENCH_trace.json and diffs it against the committed
 * baseline (bench/baselines/BENCH_trace.json, refreshed with
 * tools/regen_perf_baseline.sh).
 *
 * Resident memory is sampled around the streaming phases: the mmap
 * backend releases consumed windows, so the RSS delta stays O(1)
 * however many records the file holds — that, and the Mrec/s columns,
 * are the headline numbers quoted in docs/TRACES.md.
 *
 * Usage: trace_perf [--records N] [--sim-records N] [--json FILE]
 *                     [--keep] [--dir PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dram/dram_presets.hh"
#include "harness/testbench.hh"
#include "sim/random.hh"
#include "trafficgen/trace.hh"
#include "trafficgen/trace_file.hh"

using namespace dramctrl;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Current resident set size in MiB (0 where /proc is missing). */
double
currentRssMb()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long long size = 0, resident = 0;
    int n = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (n != 2)
        return 0;
    return static_cast<double>(resident) * 4096.0 / (1024.0 * 1024.0);
}

struct Row
{
    std::string name;
    std::uint64_t records = 0;
    double seconds = 0;
    double mrecPerSec = 0;
    double rssMb = 0; ///< resident-set delta across the phase
};

Row
makeRow(const std::string &name, std::uint64_t records, double secs,
        double rss_delta)
{
    Row r;
    r.name = name;
    r.records = records;
    r.seconds = secs;
    r.mrecPerSec =
        secs > 0 ? static_cast<double>(records) / secs / 1e6 : 0;
    r.rssMb = rss_delta;
    return r;
}

/** Synthesise and write @p n records; returns the write-phase row. */
Row
writeTrace(const std::string &path, std::uint64_t n)
{
    double rss0 = currentRssMb();
    double t0 = now();
    TraceWriter writer(path);
    Random rng(42);
    Tick tick = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        tick += 3000 + (i % 7) * 250; // ~3-4.5 ns gaps
        TraceEntry e;
        e.tick = tick;
        e.isRead = (rng.next() & 3) != 0; // 75% reads
        // 256 MiB window: inside every preset's channel capacity, so
        // the same file feeds both the decode and the replay phases.
        e.addr = (rng.next() & ((1ULL << 28) - 1)) & ~63ULL;
        e.size = 64;
        writer.append(e);
    }
    writer.finish();
    return makeRow("write", n, now() - t0, currentRssMb() - rss0);
}

/** Decode the whole file with @p backend; checksum defeats DCE. */
Row
decodeTrace(const std::string &path, TraceReader::Backend backend,
            const char *name)
{
    double rss0 = currentRssMb();
    double t0 = now();
    // The CRC pass at open is part of honest ingestion cost.
    TraceReader reader(path, /*verify_crc=*/true, backend);
    TraceEntry e;
    std::uint64_t n = 0;
    Addr sum = 0;
    while (reader.next(e)) {
        sum += e.addr;
        ++n;
    }
    Row r = makeRow(name, n, now() - t0, currentRssMb() - rss0);
    if (sum == 0 && n > 0)
        std::fprintf(stderr, "(unlikely zero checksum)\n");
    return r;
}

/** Pull every record through the player's TraceSource seam. */
Row
dispatchTrace(const std::string &path)
{
    double rss0 = currentRssMb();
    double t0 = now();
    DtrcTraceSource src(path);
    TraceEntry e;
    std::uint64_t n = 0;
    Addr sum = 0;
    while (src.peek(e)) {
        src.advance();
        sum += e.addr;
        ++n;
    }
    Row r = makeRow("source_dispatch", n, now() - t0,
                    currentRssMb() - rss0);
    if (sum == 0 && n > 0)
        std::fprintf(stderr, "(unlikely zero checksum)\n");
    return r;
}

/** Parse the text twin of the same trace with loadTrace(). */
Row
parseText(const std::string &dtrc, const std::string &txt)
{
    // Convert once (not timed) ...
    {
        TraceReader reader(dtrc, /*verify_crc=*/false);
        std::FILE *f = std::fopen(txt.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write '%s'", txt.c_str());
        TraceEntry e;
        while (reader.next(e))
            std::fprintf(f, "%llu %c %llx %u\n",
                         static_cast<unsigned long long>(e.tick),
                         e.isRead ? 'r' : 'w',
                         static_cast<unsigned long long>(e.addr),
                         e.size);
        std::fclose(f);
    }
    // ... then time the parse.
    double rss0 = currentRssMb();
    double t0 = now();
    std::vector<TraceEntry> entries = loadTrace(txt);
    return makeRow("text_parse", entries.size(), now() - t0,
                   currentRssMb() - rss0);
}

/** Replay the first @p n records through a simulated controller. */
Row
simReplay(const std::string &path, std::uint64_t n)
{
    // Truncate to n records so the simulated phase stays affordable
    // at any --records; the ingestion phases above cover the full
    // file.
    std::string clipped = path + ".clip";
    {
        TraceReader reader(path, /*verify_crc=*/false);
        TraceWriter writer(clipped);
        TraceEntry e;
        for (std::uint64_t i = 0; i < n && reader.next(e); ++i)
            writer.append(e);
        writer.finish();
    }

    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.writeLowThreshold = 0.0;
    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);
    TracePlayerConfig pc;
    pc.source = std::make_shared<DtrcTraceSource>(clipped);
    auto &player = tb.addGen<TracePlayer>(pc);

    double rss0 = currentRssMb();
    double t0 = now();
    tb.runToCompletion([&] { return player.done(); }, fromUs(1000000));
    Row r = makeRow("sim_replay", player.injected(), now() - t0,
                    currentRssMb() - rss0);
    std::remove(clipped.c_str());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t records = 5'000'000;
    std::uint64_t sim_records = 500'000;
    const char *json_path = nullptr;
    std::string dir = "/tmp";
    bool keep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc)
            records = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--sim-records") == 0 &&
                 i + 1 < argc)
            sim_records = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            dir = argv[++i];
        else if (std::strcmp(argv[i], "--keep") == 0)
            keep = true;
        else
            fatal("unknown option '%s'", argv[i]);
    }

    std::string dtrc = dir + "/trace_replay_bench.dtrc";
    std::string txt = dir + "/trace_replay_bench.txt";

    std::printf("trace_perf: .dtrc pipeline throughput, %llu "
                "records (%.0f MB)\n",
                static_cast<unsigned long long>(records),
                static_cast<double>(records * kTraceRecordSize) / 1e6);
    std::printf("%-16s %12s %10s %12s %10s\n", "phase", "records",
                "host_s", "Mrec/s", "rss_mb");

    std::vector<Row> rows;
    auto report = [&](const Row &r) {
        rows.push_back(r);
        std::printf("%-16s %12llu %10.3f %12.2f %10.1f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.records),
                    r.seconds, r.mrecPerSec, r.rssMb);
    };

    report(writeTrace(dtrc, records));
    {
        TraceReader probe(dtrc, /*verify_crc=*/false);
        if (probe.usingMmap())
            report(decodeTrace(dtrc, TraceReader::Backend::Mmap,
                               "decode_mmap"));
    }
    report(decodeTrace(dtrc, TraceReader::Backend::Read,
                       "decode_read"));
    report(dispatchTrace(dtrc));
    report(parseText(dtrc, txt));
    report(simReplay(dtrc, std::min(records, sim_records)));

    // Binary-vs-text ingestion ratio on the same trace.
    double bin = 0, text = 0;
    for (const Row &r : rows) {
        if (r.name == "decode_mmap" || (bin == 0 &&
                                        r.name == "decode_read"))
            bin = r.mrecPerSec;
        if (r.name == "text_parse")
            text = r.mrecPerSec;
    }
    double ratio = text > 0 ? bin / text : 0;
    std::printf("binary/text ingestion ratio: %.1fx\n", ratio);

    if (json_path != nullptr) {
        std::FILE *f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "trace_perf: cannot open %s\n",
                         json_path);
            return 1;
        }
        std::fprintf(f, "[\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                f,
                "  {\"name\": \"%s\", \"records\": %llu, "
                "\"host_seconds\": %.6f, \"mrec_per_sec\": %.2f, "
                "\"rss_mb\": %.1f}%s\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.records), r.seconds,
                r.mrecPerSec, r.rssMb, i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "]\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
    }

    if (!keep) {
        std::remove(dtrc.c_str());
        std::remove(txt.c_str());
    }
    return 0;
}
