/**
 * @file
 * Experiment E6 — Section III-C3: DRAM power correlation between the
 * two controller models across the synthetic test cases. Both models
 * feed the same Micron power model with their own behavioural
 * statistics; the paper reports an average difference of ~3% and a
 * maximum of ~8%, attributable to the architectural/policy deltas.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader("power_correlation: Micron-model power, both models",
                "Section III-C3 (power validation)");

    struct Case
    {
        const char *name;
        PagePolicy page;
        AddrMapping map;
        std::uint64_t stride;
        unsigned banks;
        unsigned readPct;
    };

    const Case cases[] = {
        {"open_rd_s64_b1", PagePolicy::Open, AddrMapping::RoRaBaCoCh,
         64, 1, 100},
        {"open_rd_s512_b4", PagePolicy::Open, AddrMapping::RoRaBaCoCh,
         512, 4, 100},
        {"open_rd_s1024_b8", PagePolicy::Open,
         AddrMapping::RoRaBaCoCh, 1024, 8, 100},
        {"open_mix_s256_b4", PagePolicy::Open,
         AddrMapping::RoRaBaCoCh, 256, 4, 50},
        {"open_wr_s512_b8", PagePolicy::Open, AddrMapping::RoRaBaCoCh,
         512, 8, 0},
        {"closed_rd_s64_b8", PagePolicy::Closed,
         AddrMapping::RoCoRaBaCh, 64, 8, 100},
        {"closed_mix_s128_b4", PagePolicy::Closed,
         AddrMapping::RoCoRaBaCh, 128, 4, 50},
        {"closed_wr_s256_b8", PagePolicy::Closed,
         AddrMapping::RoCoRaBaCh, 256, 8, 0},
    };

    std::printf("%-20s %10s %10s %8s\n", "case", "event_W", "cycle_W",
                "diff");

    auto params = power::ddr3Params();
    std::vector<double> diffs;
    for (const Case &c : cases) {
        PointConfig pc;
        pc.page = c.page;
        pc.mapping = c.map;
        pc.strideBytes = c.stride;
        pc.banks = c.banks;
        pc.readPct = c.readPct;

        pc.model = harness::CtrlModel::Event;
        PointResult ev = runPoint(pc);
        pc.model = harness::CtrlModel::Cycle;
        PointResult cy = runPoint(pc);

        double p_ev =
            power::computePower(ev.powerIn, ev.cfg, params).total();
        double p_cy =
            power::computePower(cy.powerIn, cy.cfg, params).total();
        double diff = 100.0 * (p_ev - p_cy) / p_cy;
        diffs.push_back(std::abs(diff));

        std::printf("%-20s %9.3f %9.3f %7.1f%%\n", c.name, p_ev, p_cy,
                    diff);
    }

    double avg = 0;
    for (double d : diffs)
        avg += d;
    avg /= static_cast<double>(diffs.size());
    double mx = *std::max_element(diffs.begin(), diffs.end());

    std::printf("\nsummary: avg |diff| %.1f%% (paper: ~3%%), max "
                "|diff| %.1f%% (paper: ~8%%)\n",
                avg, mx);
    return 0;
}
