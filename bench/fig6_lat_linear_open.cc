/**
 * @file
 * Experiment E4 — paper Figure 6: read latency distribution for
 * read-only linear traffic under an open-page policy, measured at the
 * traffic generator (so all queueing and serialisation is included).
 *
 * Expected shape: both models produce similar unimodal distributions.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

void
printDistribution(const char *label, const PointResult &r)
{
    std::printf("--- %s: mean %.1f ns, modes %u\n", label,
                r.avgReadLatencyNs, r.latencyModes);
    std::uint64_t total = 0;
    for (const auto &[lo, n] : r.latencyBuckets)
        total += n;
    for (const auto &[lo, n] : r.latencyBuckets) {
        double pct = 100.0 * static_cast<double>(n) /
                     static_cast<double>(total);
        std::printf("%8.0f ns %7.2f%% |", lo, pct);
        for (int i = 0; i < static_cast<int>(pct); ++i)
            std::printf("#");
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader(
        "fig6_lat_linear_open: read latency distribution, linear "
        "reads, open page",
        "Figure 6 (Section III-C2)");

    PointConfig pc;
    pc.page = PagePolicy::Open;
    pc.mapping = AddrMapping::RoRaBaCoCh;
    pc.readPct = 100;
    pc.numRequests = 20000;
    pc.itt = fromNs(12); // moderate load: queues form but stay finite

    pc.model = harness::CtrlModel::Event;
    PointResult ev = runLinearPoint(pc);
    pc.model = harness::CtrlModel::Cycle;
    PointResult cy = runLinearPoint(pc);

    printDistribution("event model", ev);
    printDistribution("cycle model", cy);

    std::printf("\nsummary: event mean %.1f ns vs cycle mean %.1f ns "
                "(diff %.1f%%)\n",
                ev.avgReadLatencyNs, cy.avgReadLatencyNs,
                100.0 * (ev.avgReadLatencyNs - cy.avgReadLatencyNs) /
                    cy.avgReadLatencyNs);
    return 0;
}
