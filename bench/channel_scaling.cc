/**
 * @file
 * Intra-run sharded-engine scaling: the same multi-channel workload
 * (one generator per channel of an hmc_vault-style stack) executed at
 * several `--sim-threads` widths per channel count. The sharded
 * engine promises byte-identical results at every width, so each cell
 * is also a determinism check: the stats JSON must match the
 * single-threaded run before its timing counts.
 *
 * Near-linear speedup on the 64- and 256-channel grids is the
 * tentpole target of the sharding work (docs/PERFORMANCE.md); CI runs
 * the 64-channel row and gates on a core-count-scaled floor.
 *
 * Usage: channel_scaling [--channels 16,64,256] [--threads 1,2,4,8]
 *                        [--requests-per-gen N] [--json FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "dram/dram_presets.hh"
#include "exec/batch_runner.hh"
#include "exec/thread_pool.hh"
#include "harness/multichannel.hh"
#include "sim/logging.hh"
#include "trafficgen/random_gen.hh"

using namespace dramctrl;

namespace {

struct Cell
{
    unsigned channels;
    unsigned simThreads;
    double seconds;
    double reqPerSec;
    double speedup;
    bool match;
};

struct RunResult
{
    double seconds;
    std::string statsJson;
};

/** One full multi-channel run; wall time covers build + simulate. */
RunResult
runOnce(unsigned channels, unsigned sim_threads,
        std::uint64_t requests_per_gen, std::uint64_t seed)
{
    auto t0 = std::chrono::steady_clock::now();

    harness::MultiChannelConfig mcfg;
    mcfg.channels = channels;
    mcfg.ctrl = presets::hmcVault();
    mcfg.ctrl.writeLowThreshold = 0.0;
    mcfg.ctrl.check();
    mcfg.simThreads = sim_threads;

    harness::MultiChannelSystem mc(mcfg);

    GenConfig gc;
    gc.minITT = gc.maxITT = fromNs(4.0);
    gc.numRequests = requests_per_gen;
    gc.readPct = 67;
    for (unsigned i = 0; i < channels; ++i) {
        GenConfig g = harness::sliceGenWindow(gc, i, channels,
                                              mc.totalCapacity());
        g.seed = exec::deriveSeed(seed, i);
        mc.addGen<RandomGen>(g);
    }

    mc.runToCompletion();

    std::ostringstream os;
    mc.sim().dumpStatsJson(os);

    auto t1 = std::chrono::steady_clock::now();
    return {std::chrono::duration<double>(t1 - t0).count(), os.str()};
}

std::vector<unsigned>
parseList(const char *arg)
{
    std::vector<unsigned> vals;
    std::string s(arg);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        vals.push_back(static_cast<unsigned>(
            std::stoul(s.substr(pos, comma - pos))));
        pos = comma + 1;
    }
    return vals;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<unsigned> channel_counts = {16, 64, 256};
    std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    std::uint64_t requests_per_gen = 120;
    std::uint64_t seed = 1;
    const char *json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--channels") == 0)
            channel_counts = parseList(argv[++i]);
        else if (std::strcmp(argv[i], "--threads") == 0)
            thread_counts = parseList(argv[++i]);
        else if (std::strcmp(argv[i], "--requests-per-gen") == 0)
            requests_per_gen = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[++i];
    }

    setQuiet(true);
    setThrowOnError(true);

    std::printf("channel_scaling: sharded multi-channel runs, %llu "
                "requests/generator (%u hardware threads)\n\n",
                static_cast<unsigned long long>(requests_per_gen),
                exec::ThreadPool::hardwareThreads());
    std::printf("%9s %8s %10s %12s %9s %6s\n", "channels", "threads",
                "seconds", "req/sec", "speedup", "match");

    std::vector<Cell> grid;
    bool all_match = true;
    for (unsigned channels : channel_counts) {
        double serial_s = 0;
        std::string serial_stats;
        for (unsigned threads : thread_counts) {
            RunResult r =
                runOnce(channels, threads, requests_per_gen, seed);
            Cell c;
            c.channels = channels;
            c.simThreads = threads;
            c.seconds = r.seconds;
            double total_reqs = static_cast<double>(requests_per_gen) *
                                channels;
            c.reqPerSec = r.seconds > 0 ? total_reqs / r.seconds : 0;
            if (threads == thread_counts.front()) {
                serial_s = r.seconds;
                serial_stats = r.statsJson;
            }
            c.speedup = r.seconds > 0 ? serial_s / r.seconds : 0;
            c.match = r.statsJson == serial_stats;
            all_match = all_match && c.match;
            grid.push_back(c);
            std::printf("%9u %8u %10.3f %12.0f %8.2fx %6s\n",
                        c.channels, c.simThreads, c.seconds,
                        c.reqPerSec, c.speedup,
                        c.match ? "yes" : "NO");
        }
    }

    if (json_path != nullptr) {
        std::FILE *f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "channel_scaling: cannot open %s\n",
                         json_path);
            return 1;
        }
        std::fprintf(f,
                     "{\"bench\": \"channel_scaling\", "
                     "\"hardware_threads\": %u,\n"
                     " \"requests_per_gen\": %llu, \"seed\": %llu,\n"
                     " \"grid\": [\n",
                     exec::ThreadPool::hardwareThreads(),
                     static_cast<unsigned long long>(requests_per_gen),
                     static_cast<unsigned long long>(seed));
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const Cell &c = grid[i];
            std::fprintf(f,
                         "  {\"channels\": %u, \"sim_threads\": %u, "
                         "\"seconds\": %.6f, \"req_per_sec\": %.1f, "
                         "\"speedup\": %.3f, \"match\": %s}%s\n",
                         c.channels, c.simThreads, c.seconds,
                         c.reqPerSec, c.speedup,
                         c.match ? "true" : "false",
                         i + 1 < grid.size() ? "," : "");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    }

    // Determinism is a hard failure even when timing is not gated.
    return all_match ? 0 : 1;
}
