/**
 * @file
 * Experiment E9 — paper Figure 9 / Section IV-B: future system
 * exploration. A 16-core canneal-like workload with a shared LLC runs
 * against three memory technologies that all offer 12.8 GByte/s:
 *
 *   DDR3:    1 channel  x 64  bit (Table IV column 1)
 *   LPDDR3:  2 channels x 32  bit (Table IV column 2)
 *   WideIO:  4 channels x 128 bit (Table IV column 3)
 *
 * The controller configuration follows Table III (20-entry queues,
 * 70%/50% watermarks, FR-FCFS, open page). The output reproduces the
 * figure's two panels: performance sensitivity (IPC) and the read
 * latency breakdown (static front/backend, queueing, bank access,
 * bus), per technology.
 *
 * Expected shape: the single-channel DDR3 suffers the largest
 * queueing component; WideIO's four slow-but-wide channels cut
 * queueing sharply at the cost of a longer bus (burst) time; LPDDR3
 * lands in between.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cpu/workload.hh"
#include "dram/dram_ctrl.hh"
#include "exec/batch_runner.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

struct TechResult
{
    double ipc;
    double l2MissNs;
    double busUtil;
    double bandwidthGBs;
    // Per-read-burst latency components, ns.
    double staticNs;
    double queueNs;
    double bankNs;
    double busNs;
};

TechResult
runTech(const std::string &preset, unsigned channels)
{
    harness::MultiCoreConfig cfg;
    cfg.numCores = 16;
    cfg.channels = channels;
    cfg.ctrl = presets::byName(preset);

    // Table III controller configuration.
    cfg.ctrl.readBufferSize = 20;
    cfg.ctrl.writeBufferSize = 20;
    cfg.ctrl.writeHighThreshold = 0.70;
    cfg.ctrl.writeLowThreshold = 0.50;
    cfg.ctrl.minWritesPerSwitch = 8;
    cfg.ctrl.schedPolicy = SchedPolicy::FrFcfs;
    cfg.ctrl.pagePolicy = PagePolicy::Open;
    cfg.ctrl.addrMapping = AddrMapping::RoRaBaCoCh;

    // Shared 8 MByte LLC as in Section IV-B.
    cfg.l2.size = 8 * 1024 * 1024;
    cfg.l2.assoc = 16;
    cfg.l2.mshrs = 32;

    cfg.model = harness::CtrlModel::Event;
    cfg.opsPerCore = 30000;
    cfg.seed = 13;

    harness::MultiCoreSystem sys(cfg, workloads::canneal());
    sys.runToCompletion(fromUs(1000000));

    TechResult r;
    r.ipc = sys.aggregateIPC();
    r.l2MissNs = sys.l2MissLatencyNs();
    r.busUtil = sys.avgBusUtil();
    r.bandwidthGBs = sys.totalBandwidthGBs();

    // Aggregate the latency breakdown over the channels, weighted by
    // serviced read bursts.
    double bursts = 0, q = 0, svc = 0;
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        auto &ctrl = dynamic_cast<DRAMCtrl &>(sys.ctrl(ch));
        const auto &s = ctrl.ctrlStats();
        double b = s.readBursts.value() - s.servicedByWrQ.value();
        bursts += b;
        q += s.totQLat.value();
        svc += s.totSvcLat.value();
    }
    r.staticNs = toNs(cfg.ctrl.frontendLatency +
                      cfg.ctrl.backendLatency);
    r.busNs = toNs(cfg.ctrl.timing.tBURST);
    if (bursts > 0) {
        r.queueNs = toNs(static_cast<Tick>(q)) / bursts;
        r.bankNs =
            toNs(static_cast<Tick>(svc)) / bursts - r.busNs;
    } else {
        r.queueNs = r.bankNs = 0;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned jobs = bench::parseJobs(argc, argv);
    printHeader("fig9_mem_exploration: DDR3 vs LPDDR3 vs WideIO, "
                "16-core canneal",
                "Figure 9 / Tables III & IV (Section IV-B)");

    struct Tech
    {
        const char *label;
        const char *preset;
        unsigned channels;
    };
    const Tech techs[] = {
        {"DDR3 1x64", "ddr3_1600", 1},
        {"LPDDR3 2x32", "lpddr3_1600", 2},
        {"WideIO 4x128", "wideio_200", 4},
    };

    std::printf("%-14s %8s %10s %9s %9s\n", "technology", "ipc",
                "l2miss_ns", "bus_util", "bw_GB/s");
    // One batch job per technology; rows print in table order as
    // each result lands, identical for any --jobs value.
    std::vector<TechResult> results;
    exec::BatchRunner runner(jobs);
    runner.run<TechResult>(
        std::size(techs),
        [&](std::size_t i) {
            return runTech(techs[i].preset, techs[i].channels);
        },
        [&](const exec::JobOutcome<TechResult> &out) {
            if (!out.ok)
                fatal("tech %s failed: %s", techs[out.index].label,
                      out.error.c_str());
            const TechResult &r = out.value;
            results.push_back(r);
            std::printf("%-14s %8.2f %10.1f %8.1f%% %9.2f\n",
                        techs[out.index].label, r.ipc, r.l2MissNs,
                        100 * r.busUtil, r.bandwidthGBs);
        });

    std::printf("\nread latency breakdown per DRAM burst (ns):\n");
    std::printf("%-14s %8s %8s %8s %8s %8s\n", "technology", "static",
                "queue", "bank", "bus", "total");
    for (unsigned i = 0; i < std::size(techs); ++i) {
        const TechResult &r = results[i];
        std::printf("%-14s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                    techs[i].label, r.staticNs, r.queueNs, r.bankNs,
                    r.busNs,
                    r.staticNs + r.queueNs + r.bankNs + r.busNs);
    }

    std::printf("\nexpected shape: DDR3's single channel carries the "
                "largest queueing component;\nWideIO trades a longer "
                "bus transfer for much lower queueing; LPDDR3 lands "
                "between.\n");
    return 0;
}
