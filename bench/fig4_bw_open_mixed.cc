/**
 * @file
 * Experiment E2 — paper Figure 4: data bus utilisation under an
 * open-page policy with mixed (1:1 read/write) DRAM-aware traffic.
 *
 * Expected shape: both models close to each other; the event model's
 * write drain trades row-hit benefit against fewer read/write
 * turnarounds, netting out near the cycle model's interleaved
 * servicing (Section III-C1).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader(
        "fig4_bw_open_mixed: bus utilisation, open page, 1:1 mix",
        "Figure 4 (Section III-C1)");

    std::printf("%8s %6s %12s %12s %8s\n", "stride", "banks",
                "event_util", "cycle_util", "delta");

    const unsigned bank_sweep[] = {1, 2, 4, 8};
    for (unsigned banks : bank_sweep) {
        for (std::uint64_t stride = 64; stride <= 1024; stride *= 2) {
            PointConfig pc;
            pc.page = PagePolicy::Open;
            pc.mapping = AddrMapping::RoRaBaCoCh;
            pc.strideBytes = stride;
            pc.banks = banks;
            pc.readPct = 50;

            pc.model = harness::CtrlModel::Event;
            PointResult ev = runPoint(pc);
            pc.model = harness::CtrlModel::Cycle;
            PointResult cy = runPoint(pc);

            std::printf("%8llu %6u %11.1f%% %11.1f%% %7.1f%%\n",
                        static_cast<unsigned long long>(stride), banks,
                        100 * ev.busUtil, 100 * cy.busUtil,
                        100 * (ev.busUtil - cy.busUtil));
        }
        std::printf("\n");
    }
    return 0;
}
