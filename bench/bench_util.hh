/**
 * @file
 * Shared plumbing for the experiment-reproduction benchmarks: run one
 * validation point (Section III test-case formulation) on either
 * controller model and collect the metrics the paper plots.
 */

#ifndef DRAMCTRL_BENCH_BENCH_UTIL_H
#define DRAMCTRL_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "dram/dram_presets.hh"
#include "exec/thread_pool.hh"
#include "harness/testbench.hh"
#include "power/micron_power.hh"
#include "sim/logging.hh"
#include "stats/histogram.hh"
#include "trafficgen/dram_gen.hh"
#include "trafficgen/linear_gen.hh"
#include "trafficgen/random_gen.hh"

namespace dramctrl {
namespace bench {

/** One Section III validation point. */
struct PointConfig
{
    harness::CtrlModel model = harness::CtrlModel::Event;
    PagePolicy page = PagePolicy::Open;
    /** Open page pairs with RoRaBaCoCh, closed with RoCoRaBaCh
     *  (Section III-B); set explicitly to override. */
    AddrMapping mapping = AddrMapping::RoRaBaCoCh;
    std::uint64_t strideBytes = 64;
    unsigned banks = 1;
    unsigned readPct = 100;
    std::uint64_t numRequests = 6000;
    /** Inject faster than the DRAM can serve to measure saturation. */
    Tick itt = fromNs(3);
    /** Queue-size overrides (0 keeps the preset's defaults). The
     *  paper matches queue sizes per experiment (Section III). */
    unsigned readBufferSize = 0;
    unsigned writeBufferSize = 0;
    /** Arbitrary final tweak of the controller configuration (used by
     *  the ablation benchmarks to sweep individual design choices). */
    std::function<void(DRAMCtrlConfig &)> tweak;
};

/** What one run produced. */
struct PointResult
{
    double busUtil = 0;
    double bandwidthGBs = 0;
    double avgReadLatencyNs = 0;
    double rowHitRate = 0;
    PowerInputs powerIn;
    DRAMCtrlConfig cfg;
    /** Wall-clock seconds the host spent simulating. */
    double hostSeconds = 0;
    /** Simulated seconds covered. */
    double simSeconds = 0;
    /** Kernel events serviced. */
    std::uint64_t events = 0;
    /** Read latency histogram snapshot (ns). */
    std::vector<std::pair<double, std::uint64_t>> latencyBuckets;
    unsigned latencyModes = 0;
    /** Mean writes drained per write episode (event model only). */
    double wrPerTurnaround = 0;
};

/** Apply the point's controller-configuration overrides. */
inline void
applyOverrides(DRAMCtrlConfig &cfg, const PointConfig &pc)
{
    cfg.pagePolicy = pc.page;
    cfg.addrMapping = pc.mapping;
    if (pc.readBufferSize != 0)
        cfg.readBufferSize = pc.readBufferSize;
    if (pc.writeBufferSize != 0) {
        cfg.writeBufferSize = pc.writeBufferSize;
        cfg.minWritesPerSwitch =
            std::max(1u, std::min(cfg.minWritesPerSwitch,
                                  pc.writeBufferSize / 2));
    }
    if (pc.tweak)
        pc.tweak(cfg);
}

/** Run one validation point with the DRAM-aware generator. */
inline PointResult
runPoint(const PointConfig &pc)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.writeLowThreshold = 0.0; // drain fully so runs terminate
    applyOverrides(cfg, pc);

    harness::SingleChannelSystem tb(cfg, pc.model);

    DramGenConfig gc;
    gc.org = cfg.org;
    gc.mapping = cfg.addrMapping;
    gc.strideBytes = pc.strideBytes;
    gc.numBanksTarget = pc.banks;
    gc.readPct = pc.readPct;
    gc.minITT = gc.maxITT = pc.itt;
    gc.numRequests = pc.numRequests;
    gc.seed = 12345;
    auto &gen = tb.addGen<DramGen>(gc);

    // Warm up 10% of the requests, then measure the rest.
    auto t0 = std::chrono::steady_clock::now();
    tb.sim().run(fromUs(5));
    tb.sim().resetStats();
    Tick measure_start = tb.sim().curTick();
    tb.runToCompletion([&] { return gen.done(); }, fromUs(100000));
    auto t1 = std::chrono::steady_clock::now();

    PointResult r;
    r.cfg = cfg;
    r.busUtil = tb.ctrl().busUtilisation();
    r.bandwidthGBs = tb.ctrl().achievedBandwidthGBs();
    r.avgReadLatencyNs = gen.avgReadLatencyNs();
    r.powerIn = tb.ctrl().powerInputs();
    r.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.simSeconds = toSeconds(tb.sim().curTick() - measure_start);
    r.events = tb.sim().eventq().numEventsServiced();
    if (pc.model == harness::CtrlModel::Event) {
        r.rowHitRate =
            tb.eventCtrl().ctrlStats().rowHitRate.value();
        r.wrPerTurnaround =
            tb.eventCtrl().ctrlStats().wrPerTurnAround.value();
    }

    const auto &h = gen.genStats().readLatencyHist;
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        if (h.bucketCount(i) > 0)
            r.latencyBuckets.emplace_back(h.bucketLow(i),
                                          h.bucketCount(i));
    }
    r.latencyModes = h.numModes(0.02);
    return r;
}

/** Same point but with a linear or random generator (latency runs). */
inline PointResult
runLinearPoint(const PointConfig &pc, bool random = false)
{
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    applyOverrides(cfg, pc);
    harness::SingleChannelSystem tb(cfg, pc.model);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = pc.readPct;
    gc.minITT = gc.maxITT = pc.itt;
    gc.numRequests = pc.numRequests;
    gc.seed = 12345;

    BaseGen *gen;
    if (random)
        gen = &tb.addGen<RandomGen>(gc);
    else
        gen = &tb.addGen<LinearGen>(gc);

    auto t0 = std::chrono::steady_clock::now();
    tb.sim().run(fromUs(5));
    tb.sim().resetStats();
    Tick measure_start = tb.sim().curTick();
    tb.runToCompletion([&] { return gen->done(); }, fromUs(100000));
    auto t1 = std::chrono::steady_clock::now();

    PointResult r;
    r.cfg = cfg;
    r.busUtil = tb.ctrl().busUtilisation();
    r.bandwidthGBs = tb.ctrl().achievedBandwidthGBs();
    r.avgReadLatencyNs = gen->avgReadLatencyNs();
    r.powerIn = tb.ctrl().powerInputs();
    r.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.simSeconds = toSeconds(tb.sim().curTick() - measure_start);
    r.events = tb.sim().eventq().numEventsServiced();
    if (pc.model == harness::CtrlModel::Event) {
        r.rowHitRate =
            tb.eventCtrl().ctrlStats().rowHitRate.value();
        r.wrPerTurnaround =
            tb.eventCtrl().ctrlStats().wrPerTurnAround.value();
    }

    const auto &h = gen->genStats().readLatencyHist;
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        if (h.bucketCount(i) > 0)
            r.latencyBuckets.emplace_back(h.bucketLow(i),
                                          h.bucketCount(i));
    }
    r.latencyModes = h.numModes(0.02);
    return r;
}

/**
 * Pull `--jobs N` (0 = one per core) out of argv for benches whose
 * trials run on the batch engine. Defaults to 1: serial timing is
 * the paper-faithful measurement; parallel trials are for quick
 * shape checks. Output is identical either way.
 */
inline unsigned
parseJobs(int argc, char **argv, unsigned fallback = 1)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            unsigned j = static_cast<unsigned>(
                std::stoul(argv[i + 1]));
            return j == 0 ? exec::ThreadPool::hardwareThreads() : j;
        }
    }
    return fallback;
}

inline void
printHeader(const char *title, const char *paper_item)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_item);
    std::printf("==============================================================\n");
}

} // namespace bench
} // namespace dramctrl

#endif // DRAMCTRL_BENCH_BENCH_UTIL_H
