/**
 * @file
 * Ablation — the write-drain state machine (Section II-C).
 *
 * The paper's controller batches writes: a high watermark forces a
 * switch to writes, a minimum number drain per episode, and a low
 * watermark hands the bus back to reads. This benchmark sweeps the
 * knobs under mixed traffic to expose the trade-off the design
 * encodes: larger drain batches amortise the tWTR/tRTW bus
 * turnarounds (higher utilisation) at the price of longer
 * worst-case read latency (the Fig. 7 bimodality).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader("ablation_write_drain: write-drain batching knobs",
                "design choice behind Sections II-C / III-C "
                "(write handling)");

    std::printf("mixed 1:1 linear traffic, open page; the high-low "
                "watermark gap sets the drain batch\n\n");
    std::printf("%12s %10s %12s %12s %12s\n", "high/low",
                "bus_util", "avg_rd_ns", "p95_rd_ns",
                "wr/episode");

    struct Knobs
    {
        double high;
        double low;
    };
    const Knobs sweep[] = {
        {0.10, 0.05}, // tiny batches: constant turnarounds
        {0.20, 0.10}, {0.40, 0.20}, {0.60, 0.30},
        {0.85, 0.50}, // the paper's ballpark
        {0.95, 0.30}, // huge batches
    };

    for (const Knobs &k : sweep) {
        PointConfig pc;
        pc.model = harness::CtrlModel::Event;
        pc.page = PagePolicy::Open;
        pc.mapping = AddrMapping::RoRaBaCoCh;
        pc.readPct = 50;
        pc.numRequests = 12000;
        pc.itt = fromNs(7);
        pc.tweak = [&](DRAMCtrlConfig &cfg) {
            cfg.writeHighThreshold = k.high;
            cfg.writeLowThreshold = k.low;
            cfg.minWritesPerSwitch = 1;
        };
        PointResult r = runLinearPoint(pc);

        // 95th percentile from the histogram snapshot.
        std::uint64_t total = 0;
        for (const auto &[lo, n] : r.latencyBuckets)
            total += n;
        double p95 = 0;
        std::uint64_t acc = 0;
        for (const auto &[lo, n] : r.latencyBuckets) {
            acc += n;
            if (acc >= static_cast<std::uint64_t>(0.95 * total)) {
                p95 = lo;
                break;
            }
        }

        std::printf("%7.2f/%.2f %9.1f%% %12.1f %12.0f %12.1f\n",
                    k.high, k.low, 100 * r.busUtil,
                    r.avgReadLatencyNs, p95, r.wrPerTurnaround);
    }

    std::printf("\nexpected: tiny drain batches pay a bus turnaround "
                "per few writes (lower utilisation,\nbut gentle read "
                "tail); big batches amortise turnarounds and stretch "
                "the read tail.\n");
    return 0;
}
