/**
 * @file
 * Ablation — the precharge power-down extension (the paper's stated
 * future work in Section II-G).
 *
 * Sweeps the offered load from near-idle to saturation and reports,
 * with and without power-down, the background power and the average
 * read latency. The trade-off: at low intensity the device sleeps
 * most of the time (background power collapses towards IDD2P) while
 * each burst pays tXP and the lost row; at high intensity the device
 * never sleeps and the feature is free.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

struct Row
{
    double latencyNs;
    double backgroundW;
    double totalW;
    double pdFraction;
};

Row
run(Tick itt, bool power_down, bool self_refresh = false)
{
    PointConfig pc;
    pc.model = harness::CtrlModel::Event;
    pc.page = PagePolicy::Open;
    pc.mapping = AddrMapping::RoRaBaCoCh;
    pc.readPct = 100;
    pc.numRequests = 4000;
    pc.itt = itt;
    pc.tweak = [&](DRAMCtrlConfig &cfg) {
        cfg.enablePowerDown = power_down;
        cfg.powerDownDelay = fromNs(100);
        cfg.tXP = fromNs(6);
        cfg.enableSelfRefresh = self_refresh;
        cfg.selfRefreshDelay = fromUs(2);
        cfg.tXS = fromNs(170);
    };
    PointResult r = runLinearPoint(pc, /*random=*/true);
    auto p = power::computePower(r.powerIn, r.cfg,
                                 power::ddr3Params());
    Row row;
    row.latencyNs = r.avgReadLatencyNs;
    row.backgroundW = p.background;
    row.totalW = p.total();
    row.pdFraction = toSeconds(r.powerIn.powerDownTime +
                               r.powerIn.selfRefreshTime) /
                     std::max(1e-12, toSeconds(r.powerIn.window));
    return row;
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader("ablation_powerdown: precharge power-down extension",
                "extension of Section II-G (low-power states, "
                "listed as future work)");

    std::printf("random reads, load sweep; pd = power-down, sr = "
                "power-down + self-refresh\n\n");
    std::printf("%10s | %8s %8s | %10s %8s | %10s %8s %8s\n",
                "itt ns", "lat ns", "bg W", "lat(pd)", "bg W(pd)",
                "lat(sr)", "bg W(sr)", "asleep");

    for (double itt_ns : {3.0, 10.0, 50.0, 200.0, 1000.0, 5000.0,
                          20000.0}) {
        Row off = run(fromNs(itt_ns), false);
        Row pd = run(fromNs(itt_ns), true);
        Row sr = run(fromNs(itt_ns), true, true);
        std::printf("%10.0f | %8.1f %8.3f | %10.1f %8.3f | %10.1f "
                    "%8.3f %7.0f%%\n",
                    itt_ns, off.latencyNs, off.backgroundW,
                    pd.latencyNs, pd.backgroundW, sr.latencyNs,
                    sr.backgroundW, 100 * sr.pdFraction);
    }

    std::printf("\nexpected: identical at saturation; at low "
                "intensity power-down cuts background\npower and "
                "self-refresh cuts it further, while isolated "
                "accesses pay tXP or tXS\nplus the lost row hit.\n");
    return 0;
}
