/**
 * @file
 * Experiment E7 — Section III-D: simulation performance of the
 * event-based model vs the cycle-based model.
 *
 * Two parts:
 *  - google-benchmark timings of both models across the synthetic
 *    traffic patterns (the paper reports the event model ~7x faster
 *    on average, up to 10x), and
 *  - a 16-channel HMC-style configuration, where the paper reports
 *    an order of magnitude even with detailed cores.
 *
 * Absolute times are host-specific; the *ratio* is the result.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "exec/batch_runner.hh"
#include "xbar/xbar.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

struct Pattern
{
    const char *name;
    PagePolicy page;
    AddrMapping map;
    std::uint64_t stride;
    unsigned banks;
    unsigned readPct;
};

const Pattern kPatterns[] = {
    {"linear_hits", PagePolicy::Open, AddrMapping::RoRaBaCoCh, 1024, 8,
     100},
    {"random_conflicts", PagePolicy::Open, AddrMapping::RoRaBaCoCh, 64,
     8, 100},
    {"mixed_rw", PagePolicy::Open, AddrMapping::RoRaBaCoCh, 256, 4,
     50},
    {"closed_writes", PagePolicy::Closed, AddrMapping::RoCoRaBaCh, 128,
     8, 0},
};

PointResult
runOnce(harness::CtrlModel model, const Pattern &p,
        std::uint64_t requests)
{
    PointConfig pc;
    pc.model = model;
    pc.page = p.page;
    pc.mapping = p.map;
    pc.strideBytes = p.stride;
    pc.banks = p.banks;
    pc.readPct = p.readPct;
    pc.numRequests = requests;
    return runPoint(pc);
}

void
BM_SyntheticTraffic(benchmark::State &state)
{
    const Pattern &p = kPatterns[state.range(0)];
    auto model = state.range(1) == 0 ? harness::CtrlModel::Event
                                     : harness::CtrlModel::Cycle;
    std::uint64_t requests = 4000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runOnce(model, p, requests).hostSeconds);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests));
    state.SetLabel(std::string(p.name) + "/" +
                   harness::toString(model));
}

void
BM_Hmc16Channel(benchmark::State &state)
{
    auto model = state.range(0) == 0 ? harness::CtrlModel::Event
                                     : harness::CtrlModel::Cycle;
    const std::uint64_t requests = 8000;

    for (auto _ : state) {
        Simulator sim;
        DRAMCtrlConfig cfg = presets::hmcVault();
        Crossbar xbar(sim, "xbar", XBarConfig{});
        auto ranges = interleavedRanges(
            0, 16 * cfg.org.channelCapacity, 256, 16);
        std::vector<std::unique_ptr<MemCtrlBase>> vaults;
        for (unsigned ch = 0; ch < 16; ++ch) {
            vaults.push_back(harness::makeController(
                sim, "vault" + std::to_string(ch), cfg, ranges[ch],
                model));
            xbar.memSidePort(xbar.addMemSidePort(ranges[ch]))
                .bind(vaults.back()->port());
        }
        GenConfig gc;
        gc.windowSize = 1 << 26;
        gc.readPct = 70;
        gc.blockSize = 32;
        gc.minITT = gc.maxITT = fromNs(1);
        gc.numRequests = requests;
        gc.seed = 77;
        RandomGen gen(sim, "gen", gc, 0);
        gen.port().bind(xbar.cpuSidePort(xbar.addCpuSidePort()));
        harness::runUntil(sim, [&] { return gen.done(); });
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(requests));
    state.SetLabel(std::string("hmc16/") + harness::toString(model));
}

void
printSpeedupSummary(const char *json_path, unsigned jobs)
{
    std::printf("\n--- speedup summary (event vs cycle, host "
                "wall-clock) ---\n");
    std::printf("%-20s %10s %10s %8s %12s %12s\n", "pattern",
                "event_s", "cycle_s", "speedup", "ev_events/s",
                "cy_events/s");
    double total_ratio = 0;
    std::string json = "[\n";
    char row[256];

    // One batch job per pattern; both models run back-to-back on the
    // same worker so their timing ratio is same-thread. Default is
    // one job (serial) — host-time ratios are the measurement, and
    // co-running trials share the machine. --jobs trades timing
    // fidelity for wall-clock when only the shape matters.
    struct PatternTimes
    {
        PointResult ev, cy;
    };
    exec::BatchRunner runner(jobs);
    runner.run<PatternTimes>(
        std::size(kPatterns),
        [&](std::size_t i) {
            PatternTimes t;
            t.ev = runOnce(harness::CtrlModel::Event, kPatterns[i],
                           20000);
            t.cy = runOnce(harness::CtrlModel::Cycle, kPatterns[i],
                           20000);
            return t;
        },
        [&](const exec::JobOutcome<PatternTimes> &out) {
            if (!out.ok)
                fatal("pattern %s failed: %s",
                      kPatterns[out.index].name, out.error.c_str());
            const Pattern &p = kPatterns[out.index];
            const PointResult &ev = out.value.ev;
            const PointResult &cy = out.value.cy;
            double ev_rate = ev.hostSeconds > 0
                                 ? static_cast<double>(ev.events) /
                                       ev.hostSeconds
                                 : 0;
            double cy_rate = cy.hostSeconds > 0
                                 ? static_cast<double>(cy.events) /
                                       cy.hostSeconds
                                 : 0;
            std::printf("%-20s %10.4f %10.4f %7.1fx %12.0f %12.0f\n",
                        p.name, ev.hostSeconds, cy.hostSeconds,
                        cy.hostSeconds / ev.hostSeconds, ev_rate,
                        cy_rate);
            total_ratio += cy.hostSeconds / ev.hostSeconds;
            for (int m = 0; m < 2; ++m) {
                const PointResult &r = m == 0 ? ev : cy;
                double rate = m == 0 ? ev_rate : cy_rate;
                std::snprintf(
                    row, sizeof(row),
                    "  {\"pattern\": \"%s\", \"model\": \"%s\", "
                    "\"events_per_sec\": %.0f, \"host_seconds\": "
                    "%.6f, "
                    "\"sim_ticks\": %llu, \"events\": %llu},\n",
                    p.name, m == 0 ? "event" : "cycle", rate,
                    r.hostSeconds,
                    static_cast<unsigned long long>(
                        fromNs(r.simSeconds * 1e9)),
                    static_cast<unsigned long long>(r.events));
                json += row;
            }
        });
    std::printf("average speedup: %.1fx (paper: ~7x average, up to "
                "10x)\n",
                total_ratio / std::size(kPatterns));

    if (json_path != nullptr) {
        std::snprintf(row, sizeof(row),
                      "  {\"pattern\": \"all\", \"model\": \"both\", "
                      "\"avg_speedup\": %.3f}\n]\n",
                      total_ratio / std::size(kPatterns));
        json += row;
        std::FILE *f = std::fopen(json_path, "w");
        if (f != nullptr) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr,
                         "model_performance: cannot open %s\n",
                         json_path);
        }
    }
}

} // namespace

BENCHMARK(BM_SyntheticTraffic)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hmc16Channel)
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Strip our own --json/--jobs flags before google-benchmark
    // sees argv.
    const char *json_path = nullptr;
    unsigned jobs = 1;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
            continue;
        }
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::stoul(argv[++i]));
            if (jobs == 0)
                jobs = exec::ThreadPool::hardwareThreads();
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;

    setQuiet(true);
    printHeader("model_performance: simulation speed of both models",
                "Section III-D (7x average speedup claim)");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printSpeedupSummary(json_path, jobs);
    return 0;
}
