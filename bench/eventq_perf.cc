/**
 * @file
 * Microbenchmark of the event-queue agenda itself: raw
 * schedule/service throughput, reschedule churn, and deschedule-heavy
 * mixes across agenda depths. This isolates the intrusive-heap kernel
 * from the DRAM model so agenda regressions show up directly.
 *
 * Usage: eventq_perf [--json FILE]
 *
 * With --json the results are also written as a JSON array (one object
 * per measurement: name, depth, ops, ops_per_sec, host_seconds,
 * sim_ticks) for the CI perf-smoke artifact.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "sim/eventq.hh"

using namespace dramctrl;

namespace {

/** An event that does nothing: all time measured is agenda time. */
struct NopEvent : Event
{
    void process() override {}
    std::string name() const override { return "nop"; }
};

struct Measurement
{
    std::string name;
    std::size_t depth;
    std::uint64_t ops;
    double hostSeconds;
    double opsPerSec;
    Tick simTicks;
};

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Events must leave the agenda before their storage dies. */
template <typename Events>
void
drain(EventQueue &eq, Events &events)
{
    for (auto &ev : events)
        if (ev->scheduled())
            eq.deschedule(*ev);
}

/** An event that immediately re-enters the agenda when serviced. */
struct SelfSchedulingEvent : Event
{
    SelfSchedulingEvent(EventQueue &q, std::mt19937 &r)
        : eq(&q), rng(&r)
    {}

    void process() override
    {
        eq->schedule(*this, eq->curTick() + 1 + (*rng)() % 10000);
    }

    std::string name() const override { return "self-scheduling"; }

    EventQueue *eq;
    std::mt19937 *rng;
};

/**
 * Steady-state service+schedule cycle at a fixed agenda depth: every
 * serviced event goes straight back a pseudo-random distance into the
 * future, like a simulator in flight.
 */
Measurement
benchServiceSchedule(std::size_t depth, std::uint64_t ops)
{
    EventQueue eq;
    std::mt19937 rng(42);
    std::vector<std::unique_ptr<SelfSchedulingEvent>> events;
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(
            std::make_unique<SelfSchedulingEvent>(eq, rng));
        eq.schedule(*events.back(), 1 + rng() % 10000);
    }

    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        eq.serviceOne();
    double secs = secondsSince(t0);
    Tick end = eq.curTick();
    drain(eq, events);
    return {"service_schedule", depth, ops, secs,
            static_cast<double>(ops) / secs, end};
}

/** Pure reschedule churn: move random pending events, never service. */
Measurement
benchReschedule(std::size_t depth, std::uint64_t ops)
{
    EventQueue eq;
    std::vector<std::unique_ptr<NopEvent>> events;
    std::mt19937 rng(43);
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(std::make_unique<NopEvent>());
        eq.schedule(*events.back(), 1 + rng() % 10000);
    }

    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        eq.reschedule(*events[rng() % depth], 1 + rng() % 10000);
    double secs = secondsSince(t0);
    Tick end = eq.curTick();
    drain(eq, events);
    return {"reschedule", depth, ops, secs,
            static_cast<double>(ops) / secs, end};
}

/** Schedule/deschedule pairs: the controller's cancel-heavy pattern. */
Measurement
benchScheduleDeschedule(std::size_t depth, std::uint64_t ops)
{
    EventQueue eq;
    std::vector<std::unique_ptr<NopEvent>> events;
    std::mt19937 rng(44);
    // Half the population stays pending as background load.
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(std::make_unique<NopEvent>());
        if (i % 2 == 0)
            eq.schedule(*events.back(), 1 + rng() % 10000);
    }

    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        NopEvent &ev = *events[rng() % depth];
        if (ev.scheduled())
            eq.deschedule(ev);
        else
            eq.schedule(ev, 1 + rng() % 10000);
    }
    double secs = secondsSince(t0);
    Tick end = eq.curTick();
    drain(eq, events);
    return {"schedule_deschedule", depth, ops, secs,
            static_cast<double>(ops) / secs, end};
}

void
writeJson(const char *path, const std::vector<Measurement> &rows)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "eventq_perf: cannot open %s\n", path);
        return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measurement &m = rows[i];
        std::fprintf(f,
                     "  {\"name\": \"%s\", \"depth\": %zu, "
                     "\"ops\": %llu, \"ops_per_sec\": %.0f, "
                     "\"host_seconds\": %.6f, \"sim_ticks\": %llu}%s\n",
                     m.name.c_str(), m.depth,
                     static_cast<unsigned long long>(m.ops), m.opsPerSec,
                     m.hostSeconds,
                     static_cast<unsigned long long>(m.simTicks),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    const std::size_t kDepths[] = {16, 256, 4096, 65536};
    const std::uint64_t kOps = 2'000'000;

    std::printf("eventq_perf: agenda microbenchmark "
                "(intrusive binary heap)\n");
    std::printf("%-20s %8s %12s %10s\n", "benchmark", "depth",
                "ops/sec", "host_s");

    std::vector<Measurement> rows;
    for (std::size_t depth : kDepths) {
        rows.push_back(benchServiceSchedule(depth, kOps));
        rows.push_back(benchReschedule(depth, kOps));
        rows.push_back(benchScheduleDeschedule(depth, kOps));
    }
    for (const Measurement &m : rows)
        std::printf("%-20s %8zu %12.0f %10.4f\n", m.name.c_str(),
                    m.depth, m.opsPerSec, m.hostSeconds);

    if (json_path != nullptr)
        writeJson(json_path, rows);
    return 0;
}
