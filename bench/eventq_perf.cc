/**
 * @file
 * Microbenchmark of the event-queue agenda itself: raw
 * schedule/service throughput, reschedule churn, and deschedule-heavy
 * mixes across agenda depths, for both agenda representations (the
 * intrusive binary heap and the calendar queue). This isolates the
 * agenda kernel from the DRAM model so agenda regressions show up
 * directly, and puts numbers behind the --eventq switch.
 *
 * Usage: eventq_perf [--json FILE]
 *
 * With --json the results are also written as a JSON array (one object
 * per measurement: name, agenda, depth, ops, ops_per_sec,
 * host_seconds, sim_ticks) for the CI perf-smoke artifact.
 *
 * Note the workloads here concentrate events into a few thousand
 * ticks, which for the calendar agenda means a handful of buckets and
 * O(depth) inserts; the deepest calendar runs use fewer ops to keep
 * the benchmark bounded (ops_per_sec stays comparable — the weakness
 * is real and worth seeing).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "sim/eventq.hh"

using namespace dramctrl;

namespace {

/** An event that does nothing: all time measured is agenda time. */
struct NopEvent : Event
{
    void process() override {}
    std::string name() const override { return "nop"; }
};

struct Measurement
{
    std::string name;
    const char *agenda;
    std::size_t depth;
    std::uint64_t ops;
    double hostSeconds;
    double opsPerSec;
    Tick simTicks;
};

const char *
agendaName(AgendaKind kind)
{
    return kind == AgendaKind::Heap ? "heap" : "calendar";
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Events must leave the agenda before their storage dies. */
template <typename Events>
void
drain(EventQueue &eq, Events &events)
{
    for (auto &ev : events)
        if (ev->scheduled())
            eq.deschedule(*ev);
}

/** An event that immediately re-enters the agenda when serviced. */
struct SelfSchedulingEvent : Event
{
    SelfSchedulingEvent(EventQueue &q, std::mt19937 &r)
        : eq(&q), rng(&r)
    {}

    void process() override
    {
        eq->schedule(*this, eq->curTick() + 1 + (*rng)() % 10000);
    }

    std::string name() const override { return "self-scheduling"; }

    EventQueue *eq;
    std::mt19937 *rng;
};

/**
 * Steady-state service+schedule cycle at a fixed agenda depth: every
 * serviced event goes straight back a pseudo-random distance into the
 * future, like a simulator in flight.
 */
Measurement
benchServiceSchedule(AgendaKind kind, std::size_t depth,
                     std::uint64_t ops)
{
    EventQueue eq(kind);
    std::mt19937 rng(42);
    std::vector<std::unique_ptr<SelfSchedulingEvent>> events;
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(
            std::make_unique<SelfSchedulingEvent>(eq, rng));
        eq.schedule(*events.back(), 1 + rng() % 10000);
    }

    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        eq.serviceOne();
    double secs = secondsSince(t0);
    Tick end = eq.curTick();
    drain(eq, events);
    return {"service_schedule", agendaName(kind), depth, ops, secs,
            static_cast<double>(ops) / secs, end};
}

/** Pure reschedule churn: move random pending events, never service. */
Measurement
benchReschedule(AgendaKind kind, std::size_t depth, std::uint64_t ops)
{
    EventQueue eq(kind);
    std::vector<std::unique_ptr<NopEvent>> events;
    std::mt19937 rng(43);
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(std::make_unique<NopEvent>());
        eq.schedule(*events.back(), 1 + rng() % 10000);
    }

    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        eq.reschedule(*events[rng() % depth], 1 + rng() % 10000);
    double secs = secondsSince(t0);
    Tick end = eq.curTick();
    drain(eq, events);
    return {"reschedule", agendaName(kind), depth, ops, secs,
            static_cast<double>(ops) / secs, end};
}

/** Schedule/deschedule pairs: the controller's cancel-heavy pattern. */
Measurement
benchScheduleDeschedule(AgendaKind kind, std::size_t depth,
                        std::uint64_t ops)
{
    EventQueue eq(kind);
    std::vector<std::unique_ptr<NopEvent>> events;
    std::mt19937 rng(44);
    // Half the population stays pending as background load.
    for (std::size_t i = 0; i < depth; ++i) {
        events.push_back(std::make_unique<NopEvent>());
        if (i % 2 == 0)
            eq.schedule(*events.back(), 1 + rng() % 10000);
    }

    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        NopEvent &ev = *events[rng() % depth];
        if (ev.scheduled())
            eq.deschedule(ev);
        else
            eq.schedule(ev, 1 + rng() % 10000);
    }
    double secs = secondsSince(t0);
    Tick end = eq.curTick();
    drain(eq, events);
    return {"schedule_deschedule", agendaName(kind), depth, ops, secs,
            static_cast<double>(ops) / secs, end};
}

void
writeJson(const char *path, const std::vector<Measurement> &rows)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "eventq_perf: cannot open %s\n", path);
        return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measurement &m = rows[i];
        std::fprintf(f,
                     "  {\"name\": \"%s\", \"agenda\": \"%s\", "
                     "\"depth\": %zu, "
                     "\"ops\": %llu, \"ops_per_sec\": %.0f, "
                     "\"host_seconds\": %.6f, \"sim_ticks\": %llu}%s\n",
                     m.name.c_str(), m.agenda, m.depth,
                     static_cast<unsigned long long>(m.ops), m.opsPerSec,
                     m.hostSeconds,
                     static_cast<unsigned long long>(m.simTicks),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    const std::size_t kDepths[] = {16, 256, 4096, 65536};
    const std::uint64_t kOps = 2'000'000;

    std::printf("eventq_perf: agenda microbenchmark "
                "(heap vs calendar)\n");
    std::printf("%-20s %-9s %8s %12s %10s\n", "benchmark", "agenda",
                "depth", "ops/sec", "host_s");

    std::vector<Measurement> rows;
    for (AgendaKind kind : {AgendaKind::Heap, AgendaKind::Calendar}) {
        for (std::size_t depth : kDepths) {
            // These workloads pack the agenda into a few calendar
            // buckets, so calendar inserts go O(depth); trim ops at
            // the deep points to keep the run bounded.
            std::uint64_t ops = kOps;
            if (kind == AgendaKind::Calendar && depth >= 65536)
                ops = kOps / 200;
            else if (kind == AgendaKind::Calendar && depth >= 4096)
                ops = kOps / 20;
            rows.push_back(benchServiceSchedule(kind, depth, ops));
            rows.push_back(benchReschedule(kind, depth, ops));
            rows.push_back(benchScheduleDeschedule(kind, depth, ops));
        }
    }
    for (const Measurement &m : rows)
        std::printf("%-20s %-9s %8zu %12.0f %10.4f\n", m.name.c_str(),
                    m.agenda, m.depth, m.opsPerSec, m.hostSeconds);

    if (json_path != nullptr)
        writeJson(json_path, rows);
    return 0;
}
