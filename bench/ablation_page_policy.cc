/**
 * @file
 * Ablation — row buffer (page) policies (Section II-C).
 *
 * Sweeps the four policies across locality levels (the DRAM-aware
 * generator's stride). Open-page wins with locality and loses to the
 * conflict penalty without; closed-page is locality-insensitive; the
 * adaptive variants track the better plain policy on both ends — the
 * reason the paper ships all four.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader("ablation_page_policy: the four row buffer policies",
                "design choice behind Section II-C (page policies)");

    const PagePolicy policies[] = {
        PagePolicy::Open, PagePolicy::OpenAdaptive, PagePolicy::Closed,
        PagePolicy::ClosedAdaptive};

    std::printf("read traffic, 4 banks, DRAM-aware stride sweep; "
                "cells = bus utilisation %%\n\n");
    std::printf("%8s", "stride");
    for (PagePolicy p : policies)
        std::printf(" %16s", toString(p));
    std::printf("\n");

    for (std::uint64_t stride = 64; stride <= 1024; stride *= 2) {
        std::printf("%8llu", static_cast<unsigned long long>(stride));
        for (PagePolicy p : policies) {
            PointConfig pc;
            pc.model = harness::CtrlModel::Event;
            pc.page = p;
            // Keep one mapping so only the policy varies.
            pc.mapping = AddrMapping::RoRaBaCoCh;
            pc.strideBytes = stride;
            pc.banks = 4;
            pc.readPct = 100;
            pc.numRequests = 6000;
            PointResult r = runPoint(pc);
            std::printf(" %15.1f%%", 100 * r.busUtil);
        }
        std::printf("\n");
    }

    std::printf("\nper-policy activates for the stride-1024 point "
                "(fewer = more row reuse):\n");
    for (PagePolicy p : policies) {
        PointConfig pc;
        pc.model = harness::CtrlModel::Event;
        pc.page = p;
        pc.mapping = AddrMapping::RoRaBaCoCh;
        pc.strideBytes = 1024;
        pc.banks = 4;
        pc.readPct = 100;
        pc.numRequests = 6000;
        PointResult r = runPoint(pc);
        std::printf("%18s: acts/burst %.3f\n", toString(p),
                    r.powerIn.numActs /
                        std::max(1.0, r.powerIn.readBursts));
    }
    return 0;
}
