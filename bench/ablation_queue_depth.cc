/**
 * @file
 * Ablation — read queue depth (Table I buffer sizing).
 *
 * Sweeps the read buffer size under saturating random traffic. A
 * deeper queue gives FR-FCFS more row hits and bank parallelism to
 * find (utilisation up) but queues requests longer (latency up) —
 * the classic knee the paper's per-instance queue parameters let a
 * system architect pick per controller.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader("ablation_queue_depth: read buffer sizing",
                "design choice behind Table I (buffer size "
                "parameters)");

    std::printf("saturating random reads\n\n");
    std::printf("%10s %10s %12s %12s\n", "rd queue", "bus_util",
                "avg_rd_ns", "row_hits");

    for (unsigned depth : {2u, 4u, 8u, 16u, 32u, 64u}) {
        PointConfig pc;
        pc.model = harness::CtrlModel::Event;
        pc.page = PagePolicy::Open;
        pc.mapping = AddrMapping::RoRaBaCoCh;
        pc.readPct = 100;
        pc.numRequests = 10000;
        pc.itt = fromNs(3);
        pc.readBufferSize = depth;
        PointResult r = runLinearPoint(pc, /*random=*/true);
        std::printf("%10u %9.1f%% %12.1f %12.0f\n", depth,
                    100 * r.busUtil, r.avgReadLatencyNs,
                    r.powerIn.numActs < r.powerIn.readBursts
                        ? r.powerIn.readBursts - r.powerIn.numActs
                        : 0.0);
    }

    std::printf("\nexpected: utilisation climbs with depth and "
                "saturates; latency grows roughly\nlinearly with "
                "depth once the queue is the bottleneck.\n");
    return 0;
}
