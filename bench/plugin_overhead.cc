/**
 * @file
 * Host-cost ablation for the controller plugin chain (ECC, PRAC,
 * refresh managers — docs/PLUGINS.md). The paper's speed claim
 * (Section IV) rests on the event model doing almost no per-command
 * work; the plugin hooks add a dispatch on every enqueue, command and
 * burst, so this bench quantifies what a full chain costs relative to
 * the bare controller on identical traffic.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "dram/plugin/plugin.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

struct ChainResult
{
    double hostSeconds = 0;
    double reqPerSec = 0;
    double avgReadLatencyNs = 0;
};

ChainResult
run(const std::string &plugins)
{
    constexpr std::uint64_t kRequests = 60000;

    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.writeLowThreshold = 0.0; // drain fully so runs terminate
    if (!plugins.empty()) {
        std::string err;
        if (!plugin::parsePluginList(plugins, cfg, err))
            fatal("plugin_overhead: %s", err.c_str());
        for (auto &spec : cfg.plugins) {
            if (spec.kind == "ecc") {
                spec.eccBer = 1e-4; // exercise the error-draw path
                spec.eccSeed = 99;
            } else if (spec.kind == "prac") {
                spec.pracThreshold = 32;
            }
        }
    }
    cfg.check();

    harness::SingleChannelSystem tb(cfg, harness::CtrlModel::Event);

    GenConfig gc;
    gc.windowSize = 1 << 22;
    gc.readPct = 70;
    gc.minITT = gc.maxITT = fromNs(6);
    gc.numRequests = kRequests;
    gc.seed = 12345;
    auto &gen = tb.addGen<RandomGen>(gc);

    auto t0 = std::chrono::steady_clock::now();
    tb.runToCompletion([&] { return gen.done(); }, fromUs(100000));
    auto t1 = std::chrono::steady_clock::now();

    ChainResult r;
    r.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.reqPerSec = kRequests / r.hostSeconds;
    r.avgReadLatencyNs = gen.avgReadLatencyNs();
    return r;
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader("plugin_overhead: controller plugin chain host cost",
                "extension of Section IV (simulation performance)");

    std::printf("mixed random traffic, event model, one channel; the\n"
                "chain adds hook dispatches per enqueue/command/burst\n\n");
    std::printf("%-18s | %10s %12s %12s | %8s\n", "chain", "host s",
                "req/s", "read lat ns", "vs bare");

    const char *chains[] = {"", "ecc", "ecc,prac", "ecc,prac,refmgr",
                            "refmgr-pb"};
    double baseline = 0;
    for (const char *chain : chains) {
        ChainResult r = run(chain);
        if (baseline == 0)
            baseline = r.reqPerSec;
        std::printf("%-18s | %10.3f %12.0f %12.1f | %7.1f%%\n",
                    *chain ? chain : "(none)", r.hostSeconds,
                    r.reqPerSec, r.avgReadLatencyNs,
                    100.0 * r.reqPerSec / baseline);
    }

    std::printf("\nexpected: the chain taxes host req/s (the ECC "
                "binomial draw and PRAC tables\ndominate) but leaves "
                "simulated timing bit-identical — except refmgr-pb,\n"
                "whose per-bank refresh trades blackout width for "
                "frequency.\n");
    return 0;
}
