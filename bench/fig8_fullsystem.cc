/**
 * @file
 * Experiment E8 — paper Figure 8: full-system correlation between the
 * two controller models across PARSEC-like workloads, with a
 * DDR3 memory and a closed-page policy (Section IV-A).
 *
 * For each workload the same multi-core system (timing cores, private
 * L1s, shared L2) runs once per controller model; the figure's bars
 * are the cycle/event ratios of four metrics: simulated time to finish
 * the work, aggregate IPC, average L2 miss latency, and DRAM bus
 * utilisation. Ratios near 1.0 mean the fast model preserves
 * full-system fidelity. The paper also reports the event model
 * cutting *host* simulation time (~13% on average there; the gap here
 * depends on how much of the system is cores vs controller).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cpu/workload.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

struct SystemResult
{
    double simSeconds;
    double ipc;
    double l2MissNs;
    double busUtil;
    double hostSeconds;
};

SystemResult
runSystem(harness::CtrlModel model, const WorkloadProfile &wl)
{
    harness::MultiCoreConfig cfg;
    cfg.numCores = 4;
    cfg.channels = 1;
    cfg.ctrl = presets::ddr3_1333();
    cfg.ctrl.pagePolicy = PagePolicy::Closed;
    cfg.ctrl.addrMapping = AddrMapping::RoCoRaBaCh;
    cfg.model = model;
    cfg.opsPerCore = 60000;
    cfg.seed = 9;

    harness::MultiCoreSystem sys(cfg, wl);
    auto t0 = std::chrono::steady_clock::now();
    Tick end = sys.runToCompletion(fromUs(1000000));
    auto t1 = std::chrono::steady_clock::now();

    SystemResult r;
    r.simSeconds = toSeconds(end);
    r.ipc = sys.aggregateIPC();
    r.l2MissNs = sys.l2MissLatencyNs();
    r.busUtil = sys.avgBusUtil();
    r.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader("fig8_fullsystem: cycle/event metric ratios, "
                "PARSEC-like workloads",
                "Figure 8 (Section IV-A)");

    std::printf("%-14s %9s %8s %10s %9s %10s\n", "workload",
                "sim_time", "ipc", "l2miss", "bus_util", "host_time");
    std::printf("%-14s %9s %8s %10s %9s %10s   (all ratios "
                "cycle/event; 1.0 = perfect correlation)\n",
                "", "ratio", "ratio", "ratio", "ratio", "ratio");

    double host_saving = 0;
    unsigned n = 0;
    for (const auto &name : workloads::names()) {
        WorkloadProfile wl = workloads::byName(name);
        SystemResult ev = runSystem(harness::CtrlModel::Event, wl);
        SystemResult cy = runSystem(harness::CtrlModel::Cycle, wl);

        std::printf("%-14s %9.3f %8.3f %10.3f %9.3f %10.3f\n",
                    name.c_str(), cy.simSeconds / ev.simSeconds,
                    cy.ipc / ev.ipc, cy.l2MissNs / ev.l2MissNs,
                    cy.busUtil / ev.busUtil,
                    cy.hostSeconds / ev.hostSeconds);
        host_saving += 1.0 - ev.hostSeconds / cy.hostSeconds;
        ++n;
    }
    std::printf("\naverage host-time saving of the event model: "
                "%.0f%% (paper: 13%% avg, up to 20%%)\n",
                100.0 * host_saving / n);
    return 0;
}
