/**
 * @file
 * Batch-engine scaling: the differential-fuzz workload (sample a
 * random configuration, run both controller models, compare) at 1,
 * 2, 4 and 8 worker threads. Each case is an independent
 * shared-nothing simulation, so ideal scaling is linear up to the
 * core count; the measured runs/sec and speedup-vs-serial quantify
 * how close the engine gets on this host.
 *
 * The same cases (same master seed, same per-case derived seeds) run
 * at every width — the batch engine's determinism contract means the
 * only thing that changes is wall-clock.
 *
 * A second section compares cold-start and warm-start execution of a
 * multi-seed sweep: cold runs the warm-up inside every job, warm runs
 * it once per config group, checkpoints, and fans the measured phases
 * out from the shared snapshot (docs/CHECKPOINT.md). The two modes
 * must produce identical rows; the benchmark reports the wall-clock
 * saved.
 *
 * A third section measures *intra-run* scaling: one 16-channel
 * sharded simulation at increasing --sim-threads widths, the
 * complement of the batch engine's between-runs parallelism (the
 * deeper channels x threads grid lives in bench/channel_scaling).
 * Every width must reproduce the single-threaded stats byte for byte.
 *
 * Usage: parallel_scaling [--runs N] [--seed S]
 *                         [--json BENCH_parallel.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "dram/dram_presets.hh"
#include "exec/batch_runner.hh"
#include "exec/sweep.hh"
#include "harness/multichannel.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trafficgen/random_gen.hh"
#include "validate/config_fuzzer.hh"
#include "validate/diff_runner.hh"

using namespace dramctrl;
using namespace dramctrl::validate;

int
main(int argc, char **argv)
{
    std::uint64_t runs = 48;
    std::uint64_t seed = 1;
    const char *json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--runs") == 0)
            runs = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[++i];
    }

    setQuiet(true);
    setThrowOnError(true);

    std::printf("parallel_scaling: %llu differential-fuzz runs per "
                "width (master seed %llu, %u hardware threads)\n\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(seed),
                exec::ThreadPool::hardwareThreads());
    std::printf("%6s %10s %10s %9s %9s\n", "jobs", "seconds",
                "runs/sec", "speedup", "failures");

    DiffOptions dopts;
    FuzzerOptions fopts;

    auto fuzzOnce = [&](std::uint64_t run) {
        Random rng(exec::deriveSeed(seed, run));
        FuzzCase fc = sampleCase(rng, fopts);
        std::uint64_t streamSeed = rng.next();
        return runDiff(fc, streamSeed, dopts).pass;
    };

    struct Width
    {
        unsigned jobs;
        double seconds;
        double runsPerSec;
        double speedup;
        std::uint64_t failures;
    };
    std::vector<Width> widths;

    double serial_s = 0;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        exec::BatchRunner runner(jobs);
        std::uint64_t failures = 0;
        auto t0 = std::chrono::steady_clock::now();
        runner.run<bool>(
            runs, [&](std::size_t i) { return fuzzOnce(i); },
            [&](const exec::JobOutcome<bool> &out) {
                if (!out.ok || !out.value)
                    ++failures;
            });
        auto t1 = std::chrono::steady_clock::now();
        Width w;
        w.jobs = jobs;
        w.seconds = std::chrono::duration<double>(t1 - t0).count();
        w.runsPerSec = w.seconds > 0
                           ? static_cast<double>(runs) / w.seconds
                           : 0;
        if (jobs == 1)
            serial_s = w.seconds;
        w.speedup = w.seconds > 0 ? serial_s / w.seconds : 0;
        w.failures = failures;
        widths.push_back(w);
        std::printf("%6u %10.3f %10.2f %8.2fx %9llu\n", w.jobs,
                    w.seconds, w.runsPerSec, w.speedup,
                    static_cast<unsigned long long>(w.failures));
    }

    // --- Warm-start vs cold-start sweep -----------------------------
    // A sweep with a warm-up phase: 2 configurations x 8 seeds. Cold
    // mode repeats the warm-up in all 16 jobs; warm mode runs it twice
    // (once per config group), checkpoints, and restores per seed.
    exec::SweepSpec sspec;
    sspec.presets = {"ddr3_1333", "ddr3_1600"};
    sspec.patterns = {"random"};
    sspec.numSeeds = 8;
    sspec.masterSeed = seed;
    sspec.warmupRequests = 3000;
    sspec.requests = 1000;
    const auto grid = exec::expandGrid(sspec);
    const std::size_t groups =
        grid.size() / std::max(1u, sspec.numSeeds);
    const unsigned sweep_jobs = 8;

    std::vector<exec::SweepRow> cold_rows(grid.size());
    auto c0 = std::chrono::steady_clock::now();
    {
        exec::BatchRunner runner(sweep_jobs);
        runner.run<exec::SweepRow>(
            grid.size(),
            [&](std::size_t i) {
                return exec::runSweepPoint(grid[i], sspec);
            },
            [&](const exec::JobOutcome<exec::SweepRow> &out) {
                cold_rows[out.index] = out.value;
            });
    }
    auto c1 = std::chrono::steady_clock::now();
    double cold_s = std::chrono::duration<double>(c1 - c0).count();

    std::vector<exec::SweepRow> warm_rows(grid.size());
    auto w0 = std::chrono::steady_clock::now();
    {
        std::vector<std::string> snapshots(groups);
        exec::BatchRunner warmup(sweep_jobs);
        warmup.run<std::string>(
            groups,
            [&](std::size_t g) {
                return exec::captureWarmupSnapshot(
                    grid[g * sspec.numSeeds], sspec);
            },
            [&](const exec::JobOutcome<std::string> &out) {
                snapshots[out.index] = out.value;
            });
        exec::BatchRunner measured(sweep_jobs);
        measured.run<exec::SweepRow>(
            grid.size(),
            [&](std::size_t i) {
                return exec::runMeasuredFromSnapshot(
                    grid[i], sspec,
                    snapshots[exec::configGroupOf(grid[i], sspec)]);
            },
            [&](const exec::JobOutcome<exec::SweepRow> &out) {
                warm_rows[out.index] = out.value;
            });
    }
    auto w1 = std::chrono::steady_clock::now();
    double warm_s = std::chrono::duration<double>(w1 - w0).count();

    bool rows_match = true;
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (exec::toCsv(warm_rows[i]) != exec::toCsv(cold_rows[i]))
            rows_match = false;

    // --- Intra-run sharded scaling ----------------------------------
    // One 16-channel stack, one generator per channel, run at 1..8
    // sim threads. The stats JSON must match the 1-thread run exactly
    // at every width (the sharded engine's determinism contract).
    struct IntraWidth
    {
        unsigned simThreads;
        double seconds;
        double speedup;
        bool match;
    };
    const unsigned intra_channels = 16;
    const std::uint64_t intra_reqs = 120;
    auto intraOnce = [&](unsigned sim_threads, std::string &stats_out) {
        harness::MultiChannelConfig mcfg;
        mcfg.channels = intra_channels;
        mcfg.ctrl = presets::hmcVault();
        mcfg.ctrl.writeLowThreshold = 0.0;
        mcfg.ctrl.check();
        mcfg.simThreads = sim_threads;
        harness::MultiChannelSystem mc(mcfg);
        GenConfig gc;
        gc.minITT = gc.maxITT = fromNs(4.0);
        gc.numRequests = intra_reqs;
        gc.readPct = 67;
        for (unsigned i = 0; i < intra_channels; ++i) {
            GenConfig g = harness::sliceGenWindow(
                gc, i, intra_channels, mc.totalCapacity());
            g.seed = exec::deriveSeed(seed, i);
            mc.addGen<RandomGen>(g);
        }
        auto i0 = std::chrono::steady_clock::now();
        mc.runToCompletion();
        auto i1 = std::chrono::steady_clock::now();
        std::ostringstream os;
        mc.sim().dumpStatsJson(os);
        stats_out = os.str();
        return std::chrono::duration<double>(i1 - i0).count();
    };

    std::vector<IntraWidth> intra;
    std::string intra_ref;
    double intra_serial_s = 0;
    for (unsigned st : {1u, 2u, 4u, 8u}) {
        std::string stats;
        IntraWidth iw;
        iw.simThreads = st;
        iw.seconds = intraOnce(st, stats);
        if (st == 1) {
            intra_serial_s = iw.seconds;
            intra_ref = stats;
        }
        iw.speedup = iw.seconds > 0 ? intra_serial_s / iw.seconds : 0;
        iw.match = stats == intra_ref;
        intra.push_back(iw);
    }

    std::printf("\nintra-run sharded scaling (%u channels, %llu "
                "requests/gen)\n",
                intra_channels,
                static_cast<unsigned long long>(intra_reqs));
    std::printf("%12s %10s %9s %8s\n", "sim-threads", "seconds",
                "speedup", "match");
    for (const IntraWidth &iw : intra)
        std::printf("%12u %10.3f %8.2fx %8s\n", iw.simThreads,
                    iw.seconds, iw.speedup, iw.match ? "yes" : "NO");

    std::printf("\nwarm-start sweep (%zu points, %zu config groups, "
                "%llu warm-up + %llu measured requests, %u jobs)\n",
                grid.size(), groups,
                static_cast<unsigned long long>(sspec.warmupRequests),
                static_cast<unsigned long long>(sspec.requests),
                sweep_jobs);
    std::printf("%12s %10s %9s %8s\n", "mode", "seconds", "speedup",
                "match");
    std::printf("%12s %10.3f %8.2fx %8s\n", "cold-start", cold_s, 1.0,
                "-");
    std::printf("%12s %10.3f %8.2fx %8s\n", "warm-start", warm_s,
                warm_s > 0 ? cold_s / warm_s : 0,
                rows_match ? "yes" : "NO");

    if (json_path != nullptr) {
        std::FILE *f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "parallel_scaling: cannot open %s\n",
                         json_path);
            return 1;
        }
        std::fprintf(f,
                     "{\"bench\": \"parallel_scaling\", \"workload\": "
                     "\"differential_fuzz\",\n"
                     " \"runs\": %llu, \"master_seed\": %llu, "
                     "\"hardware_threads\": %u,\n"
                     " \"widths\": [\n",
                     static_cast<unsigned long long>(runs),
                     static_cast<unsigned long long>(seed),
                     exec::ThreadPool::hardwareThreads());
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const Width &w = widths[i];
            std::fprintf(f,
                         "  {\"jobs\": %u, \"seconds\": %.6f, "
                         "\"runs_per_sec\": %.3f, \"speedup\": %.3f, "
                         "\"failures\": %llu}%s\n",
                         w.jobs, w.seconds, w.runsPerSec, w.speedup,
                         static_cast<unsigned long long>(w.failures),
                         i + 1 < widths.size() ? "," : "");
        }
        std::fprintf(f,
                     "],\n \"intra_run\": {\"channels\": %u, "
                     "\"requests_per_gen\": %llu, \"widths\": [\n",
                     intra_channels,
                     static_cast<unsigned long long>(intra_reqs));
        for (std::size_t i = 0; i < intra.size(); ++i) {
            const IntraWidth &iw = intra[i];
            std::fprintf(f,
                         "  {\"sim_threads\": %u, \"seconds\": %.6f, "
                         "\"speedup\": %.3f, \"match\": %s}%s\n",
                         iw.simThreads, iw.seconds, iw.speedup,
                         iw.match ? "true" : "false",
                         i + 1 < intra.size() ? "," : "");
        }
        std::fprintf(f,
                     "]},\n \"warm_start\": {\"points\": %zu, "
                     "\"config_groups\": %zu, \"jobs\": %u,\n"
                     "  \"warmup_requests\": %llu, "
                     "\"measured_requests\": %llu,\n"
                     "  \"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
                     "\"speedup\": %.3f, \"rows_match\": %s}}\n",
                     grid.size(), groups, sweep_jobs,
                     static_cast<unsigned long long>(
                         sspec.warmupRequests),
                     static_cast<unsigned long long>(sspec.requests),
                     cold_s, warm_s,
                     warm_s > 0 ? cold_s / warm_s : 0,
                     rows_match ? "true" : "false");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    }
    return 0;
}
