/**
 * @file
 * Core simulation-throughput benchmark: requests per host-second for
 * both controller models over a small fixed pattern matrix. This is
 * the repo's headline perf trajectory — CI writes the result to
 * BENCH_core.json and diffs it against the committed baseline
 * (bench/baselines/BENCH_core.json, refreshed with
 * tools/regen_perf_baseline.sh), so a req/s regression between PRs is
 * visible as a number, not a feeling. It is also the harness for the
 * observability overhead budget: attribution stamping is always
 * compiled in, and this benchmark runs with every sink disabled, so
 * its req/s directly prices the sinks-off overhead.
 *
 * Usage: core_perf [--json FILE] [--requests N] [--model event|cycle]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace dramctrl;

namespace {

struct Row
{
    std::string name;
    std::string model;
    std::uint64_t requests;
    double hostSeconds;
    double reqPerSec;
    double eventsPerSec;
};

Row
measure(const char *name, harness::CtrlModel model,
        unsigned read_pct, unsigned banks, std::uint64_t requests)
{
    bench::PointConfig pc;
    pc.model = model;
    pc.readPct = read_pct;
    pc.banks = banks;
    pc.numRequests = requests;
    bench::PointResult r = bench::runPoint(pc);
    Row row;
    row.name = name;
    row.model = harness::toString(model);
    row.requests = requests;
    row.hostSeconds = r.hostSeconds;
    row.reqPerSec =
        r.hostSeconds > 0
            ? static_cast<double>(requests) / r.hostSeconds
            : 0;
    row.eventsPerSec =
        r.hostSeconds > 0
            ? static_cast<double>(r.events) / r.hostSeconds
            : 0;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    std::uint64_t requests = 20000;
    const char *model_filter = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--requests") == 0)
            requests = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--model") == 0)
            model_filter = argv[++i];
    }

    std::printf("core_perf: controller throughput "
                "(sinks disabled, attribution compiled in)\n");
    std::printf("%-16s %-6s %12s %12s %10s\n", "pattern", "model",
                "req/s", "events/s", "host_s");

    struct Spec
    {
        const char *name;
        unsigned readPct;
        unsigned banks;
    };
    const Spec kSpecs[] = {
        {"row_hit_read", 100, 1},
        {"multibank_read", 100, 4},
        {"mixed_70r", 70, 4},
    };

    std::vector<Row> rows;
    for (const Spec &s : kSpecs) {
        for (harness::CtrlModel m :
             {harness::CtrlModel::Event, harness::CtrlModel::Cycle}) {
            if (model_filter != nullptr &&
                harness::toString(m) != std::string(model_filter))
                continue;
            rows.push_back(
                measure(s.name, m, s.readPct, s.banks, requests));
            const Row &r = rows.back();
            std::printf("%-16s %-6s %12.0f %12.0f %10.4f\n",
                        r.name.c_str(), r.model.c_str(), r.reqPerSec,
                        r.eventsPerSec, r.hostSeconds);
        }
    }

    if (json_path != nullptr) {
        std::FILE *f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "core_perf: cannot open %s\n",
                         json_path);
            return 1;
        }
        std::fprintf(f, "[\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                f,
                "  {\"name\": \"%s\", \"model\": \"%s\", "
                "\"requests\": %llu, \"req_per_sec\": %.0f, "
                "\"events_per_sec\": %.0f, \"host_seconds\": %.6f}%s\n",
                r.name.c_str(), r.model.c_str(),
                static_cast<unsigned long long>(r.requests),
                r.reqPerSec, r.eventsPerSec, r.hostSeconds,
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "]\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    }
    return 0;
}
