/**
 * @file
 * Ablation — the FR-FCFS QoS scheduler extension (Section II-C says
 * the model is "a framework in which more elaborate schedulers can be
 * evaluated"; this evaluates one).
 *
 * Two identical random-read generators share one DDR3 channel at
 * increasing load. With plain FR-FCFS they split the pain evenly;
 * with priorities, requestor 1's latency stays near the unloaded
 * value while requestor 0 absorbs the queueing.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "xbar/xbar.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

namespace {

/** (latency gen0, latency gen1) for one policy and load. */
std::pair<double, double>
run(bool with_qos, Tick itt)
{
    Simulator sim;
    DRAMCtrlConfig cfg = presets::ddr3_1333();
    cfg.timing.tREFI = 0;
    if (with_qos) {
        cfg.schedPolicy = SchedPolicy::FrFcfsPrio;
        cfg.requestorPriorities = {0, 10};
    }
    DRAMCtrl ctrl(sim, "ctrl", cfg,
                  AddrRange(0, cfg.org.channelCapacity));
    Crossbar xbar(sim, "xbar", XBarConfig{});
    xbar.memSidePort(
            xbar.addMemSidePort(AddrRange(0, cfg.org.channelCapacity)))
        .bind(ctrl.port());

    std::vector<std::unique_ptr<RandomGen>> gens;
    for (unsigned g = 0; g < 2; ++g) {
        GenConfig gc;
        gc.startAddr = g * (128ULL << 20);
        gc.windowSize = 128ULL << 20;
        gc.readPct = 100;
        gc.minITT = gc.maxITT = itt;
        gc.numRequests = 5000;
        gc.seed = 500 + g;
        gens.push_back(std::make_unique<RandomGen>(
            sim, "gen" + std::to_string(g), gc,
            static_cast<RequestorId>(g)));
        gens.back()->port().bind(
            xbar.cpuSidePort(xbar.addCpuSidePort()));
    }
    harness::runUntil(sim, [&] {
        return gens[0]->done() && gens[1]->done();
    });
    return {gens[0]->avgReadLatencyNs(), gens[1]->avgReadLatencyNs()};
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader("ablation_qos: priority-aware FR-FCFS",
                "extension of Section II-C (scheduler framework)");

    std::printf("two random-read requestors share one channel; "
                "requestor 1 is prioritised\n\n");
    std::printf("%10s | %12s %12s | %12s %12s\n", "itt ns",
                "fair r0", "fair r1", "qos r0", "qos r1");

    for (double itt_ns : {30.0, 15.0, 10.0, 8.0, 6.0}) {
        auto [fair0, fair1] = run(false, fromNs(itt_ns));
        auto [qos0, qos1] = run(true, fromNs(itt_ns));
        std::printf("%10.0f | %12.1f %12.1f | %12.1f %12.1f\n",
                    itt_ns, fair0, fair1, qos0, qos1);
    }

    std::printf("\nexpected: under load the prioritised requestor "
                "keeps near-unloaded latency while\nthe best-effort "
                "one absorbs the queueing; fair FR-FCFS splits "
                "latency evenly.\n");
    return 0;
}
