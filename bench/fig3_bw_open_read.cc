/**
 * @file
 * Experiment E1 — paper Figure 3: data bus utilisation under an
 * open-page policy with read-only DRAM-aware traffic, sweeping the
 * sequential stride from one burst to a full page and the number of
 * targeted banks from 1 to 8, for both controller models.
 *
 * Expected shape: utilisation rises with stride (row hits) and with
 * banks (parallelism), peaking around 90%; the two models track each
 * other closely, and the tRRD/tFAW constraints bite at small strides.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader("fig3_bw_open_read: bus utilisation, open page, reads",
                "Figure 3 (Section III-C1)");

    std::printf("%8s %6s %12s %12s %8s %10s\n", "stride", "banks",
                "event_util", "cycle_util", "delta", "hit_rate");

    const unsigned bank_sweep[] = {1, 2, 4, 8};
    for (unsigned banks : bank_sweep) {
        for (std::uint64_t stride = 64; stride <= 1024; stride *= 2) {
            PointConfig pc;
            pc.page = PagePolicy::Open;
            pc.mapping = AddrMapping::RoRaBaCoCh;
            pc.strideBytes = stride;
            pc.banks = banks;
            pc.readPct = 100;

            pc.model = harness::CtrlModel::Event;
            PointResult ev = runPoint(pc);
            pc.model = harness::CtrlModel::Cycle;
            PointResult cy = runPoint(pc);

            std::printf("%8llu %6u %11.1f%% %11.1f%% %7.1f%% %9.2f\n",
                        static_cast<unsigned long long>(stride), banks,
                        100 * ev.busUtil, 100 * cy.busUtil,
                        100 * (ev.busUtil - cy.busUtil),
                        ev.rowHitRate);
        }
        std::printf("\n");
    }
    return 0;
}
