/**
 * @file
 * Experiment E3 — paper Figure 5: data bus utilisation under a
 * closed-page policy with write-only DRAM-aware traffic.
 *
 * Expected shape: utilisation *falls* with stride (every access after
 * the first in a stride reopens the row just auto-precharged) and
 * rises with banks; the event model sits above the cycle model at
 * higher bank counts because its write-drain mode buffers a window of
 * writes to reschedule (the paper reports ~15%).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dramctrl;
using namespace dramctrl::bench;

int
main()
{
    setQuiet(true);
    printHeader(
        "fig5_bw_closed_write: bus utilisation, closed page, writes",
        "Figure 5 (Section III-C1)");

    const unsigned bank_sweep[] = {1, 2, 4, 8};

    // Part 1: deep write queue (64 bursts). The drain window spans
    // many strides, so the event model keeps its bank parallelism and
    // sits above the cycle model, with the gap growing in banks — the
    // paper's "~15% lower utilisation for DRAMSim2" observation.
    std::printf("-- write window 64 bursts (drain-window advantage)\n");
    std::printf("%8s %6s %12s %12s %8s\n", "stride", "banks",
                "event_util", "cycle_util", "delta");
    for (unsigned banks : bank_sweep) {
        for (std::uint64_t stride = 64; stride <= 1024; stride *= 2) {
            PointConfig pc;
            pc.page = PagePolicy::Closed;
            pc.mapping = AddrMapping::RoCoRaBaCh;
            pc.strideBytes = stride;
            pc.banks = banks;
            pc.readPct = 0;

            pc.model = harness::CtrlModel::Event;
            PointResult ev = runPoint(pc);
            pc.model = harness::CtrlModel::Cycle;
            PointResult cy = runPoint(pc);

            std::printf("%8llu %6u %11.1f%% %11.1f%% %7.1f%%\n",
                        static_cast<unsigned long long>(stride), banks,
                        100 * ev.busUtil, 100 * cy.busUtil,
                        100 * (ev.busUtil - cy.busUtil));
        }
        std::printf("\n");
    }

    // Part 2: small write queue (20 bursts, Table III sizing). Long
    // strides now exceed the reschedule window, so utilisation falls
    // with stride — the paper's "longer stride inevitably leads to
    // additional bank conflicts" trend.
    std::printf("-- write window 20 bursts (stride exceeds window)\n");
    std::printf("%8s %6s %12s\n", "stride", "banks", "event_util");
    for (unsigned banks : {4u, 8u}) {
        for (std::uint64_t stride = 64; stride <= 1024; stride *= 2) {
            PointConfig pc;
            pc.page = PagePolicy::Closed;
            pc.mapping = AddrMapping::RoCoRaBaCh;
            pc.strideBytes = stride;
            pc.banks = banks;
            pc.readPct = 0;
            pc.writeBufferSize = 20;
            pc.model = harness::CtrlModel::Event;
            PointResult ev = runPoint(pc);
            std::printf("%8llu %6u %11.1f%%\n",
                        static_cast<unsigned long long>(stride), banks,
                        100 * ev.busUtil);
        }
        std::printf("\n");
    }
    return 0;
}
